//! Structural invariant validation for [`MultiClock`].
//!
//! The kernel invariants the paper's data structures rely on, checkable
//! at any quiescent point (used heavily by the property-based tests, and
//! available to downstream users as a debugging aid):
//!
//! 1. every tracked frame is on **exactly one** list;
//! 2. list membership agrees with the page-state table
//!    ([`PageState::list`]);
//! 3. a page is listed under the tier and kind its frame reports;
//! 4. untracked frames are on no list;
//! 5. the page flags mirror the state (`ACTIVE`/`PROMOTE`/`REFERENCED`/
//!    `UNEVICTABLE`);
//! 6. retry bookkeeping (a paused promotion episode) exists only for
//!    pages in `Promote` state;
//! 7. a frame listed in shard `s` belongs to shard `s` under the static
//!    frame→shard assignment (sharded scanning never strands a page on a
//!    foreign shard);
//! 8. transactional-migration bookkeeping is sound: a frame is the
//!    source of **at most one** open transaction, every pending source
//!    is tracked in `Promote` state (listless by design — the copy
//!    window spans the tick boundary), transaction destination frames
//!    are allocated but unmapped reservations, shadow copies exist only
//!    for clean mapped pages with the retained frame one or more tiers
//!    below, and stored retry bookkeeping never exceeds the
//!    [`mc_fault::RetryPolicy`] budget;
//! 9. the region map ([`crate::region`]) partitions the frame space
//!    (sorted, gap-free, exact aggregates), mirrors the tracked set
//!    (its tracked total equals the state table's), and every tracked
//!    frame lies inside a populated region — the property that makes
//!    the sparse reference snapshot lossless.
//!
//! Validation runs only on the coordinating thread at quiescent points
//! (tick end, post-promote) — never inside the parallel scan phase, where
//! shard workers hold disjoint `&mut` list borrows and the state table is
//! intentionally stale until the merge (see [`crate::executor`]).
//! Invariant 6 is what makes the executor's deferred retry-clearing rule
//! ("a merged non-`Promote` state write ends the episode") equivalent to
//! the sequential in-place clearing.

use crate::lists::WhichList;
use crate::multi_clock::MultiClock;
use crate::state::PageState;
use mc_mem::{FrameId, MemorySystem, PageFlags, PageKind, TierId};
use std::collections::HashSet;
use std::fmt;

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The frame at fault.
    pub frame: FrameId,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.frame, self.message)
    }
}

impl MultiClock {
    /// Checks every structural invariant; returns all violations (empty
    /// means the structure is consistent).
    pub fn check_invariants(&self, mem: &MemorySystem) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        let mut seen: HashSet<u32> = HashSet::new();
        let mut tracked_total = 0u64;
        let tier_count = mem.topology().tier_count();

        for t in 0..tier_count {
            let tier = TierId::new(t as u8);
            for (shard_idx, lists) in self.tier_lists(tier).shards().enumerate() {
                self.check_shard(mem, tier, shard_idx, lists, &mut seen, &mut violations);
            }
        }

        for raw in 0..mem.total_frames() as u32 {
            let frame = FrameId::new(raw);
            if self.state_of(frame).is_some() {
                tracked_total += 1;
                // 9. every tracked frame lies inside a populated region,
                //    so the sparse reference snapshot samples it.
                if !self.region_map.covers_tracked(frame) {
                    violations.push(InvariantViolation {
                        frame,
                        message: "tracked but outside every populated region".into(),
                    });
                }
            }
            if self.state_of(frame).is_some()
                && !seen.contains(&raw)
                && !self.txn_pending.contains(&frame)
            {
                violations.push(InvariantViolation {
                    frame,
                    message: "tracked but on no list".into(),
                });
            }
            // 6. retry bookkeeping only exists for paused promotion
            //    episodes, which by definition sit in Promote state.
            if self.retry_state[frame.index()].is_some()
                && self.state_of(frame) != Some(PageState::Promote)
            {
                violations.push(InvariantViolation {
                    frame,
                    message: "has retry bookkeeping but is not in Promote state".into(),
                });
            }
            // 8 (retry-boundedness). A stored episode is a *paused* one:
            //    its attempt count must still leave budget, or the give-up
            //    path failed to fire.
            if let Some(rs) = self.retry_state[frame.index()] {
                if self.cfg.retry.exhausted(rs.attempts) {
                    violations.push(InvariantViolation {
                        frame,
                        message: format!(
                            "retry bookkeeping holds {} attempts but the policy \
                             exhausts at {}",
                            rs.attempts, self.cfg.retry.max_attempts
                        ),
                    });
                }
            }
        }
        // 9 (continued). The region partition is structurally sound
        //    (sorted, gap-free, aggregates exact) and its tracked total
        //    mirrors the state table.
        if let Err(message) = self.region_map.check() {
            violations.push(InvariantViolation {
                frame: FrameId::new(0),
                message: format!("region map inconsistent: {message}"),
            });
        }
        let region_tracked = self.region_map.stats().tracked;
        if region_tracked != tracked_total {
            violations.push(InvariantViolation {
                frame: FrameId::new(0),
                message: format!(
                    "region map tracks {region_tracked} pages but the state \
                     table tracks {tracked_total}"
                ),
            });
        }
        self.check_txn_bookkeeping(mem, &mut violations);
        violations
    }

    /// Invariant 8: cross-checks the policy's pending-transaction list
    /// against the substrate's open transactions and shadow table.
    fn check_txn_bookkeeping(&self, mem: &MemorySystem, violations: &mut Vec<InvariantViolation>) {
        let mut pending_seen: HashSet<u32> = HashSet::new();
        for frame in &self.txn_pending {
            if !pending_seen.insert(frame.raw()) {
                violations.push(InvariantViolation {
                    frame: *frame,
                    message: "appears twice in the pending-transaction list".into(),
                });
            }
            if self.state_of(*frame) != Some(PageState::Promote) {
                violations.push(InvariantViolation {
                    frame: *frame,
                    message: "pending transaction source is not in Promote state".into(),
                });
            }
            if !mem.migration_txns().iter().any(|t| t.frame == *frame) {
                violations.push(InvariantViolation {
                    frame: *frame,
                    message: "pending in the policy but the substrate has no transaction".into(),
                });
            }
        }
        let mut src_seen: HashSet<u32> = HashSet::new();
        for txn in mem.migration_txns() {
            if !src_seen.insert(txn.frame.raw()) {
                violations.push(InvariantViolation {
                    frame: txn.frame,
                    message: "frame is the source of more than one open transaction".into(),
                });
            }
            let dst = mem.frame(txn.dst_frame);
            if dst.state() != mc_mem::FrameState::Allocated || dst.vpage().is_some() {
                violations.push(InvariantViolation {
                    frame: txn.dst_frame,
                    message: "transaction destination is not an unmapped reservation".into(),
                });
            }
        }
        for (key, copy) in mem.shadow_pages().iter() {
            let live = mem.frame(key);
            if live.state() != mc_mem::FrameState::Allocated
                || live.vpage().is_none()
                || live.flags().contains(mc_mem::PageFlags::DIRTY)
            {
                violations.push(InvariantViolation {
                    frame: key,
                    message: "shadowed page is not a clean mapped page".into(),
                });
            }
            let retained = mem.frame(copy);
            if retained.state() != mc_mem::FrameState::Allocated
                || retained.vpage().is_some()
                || retained.tier() <= live.tier()
            {
                violations.push(InvariantViolation {
                    frame: copy,
                    message: "shadow copy is not an unmapped lower-tier retention".into(),
                });
            }
        }
    }

    /// Checks invariants 1–5 and 7 for one shard's lists, accumulating
    /// into `seen`/`violations`.
    fn check_shard(
        &self,
        mem: &MemorySystem,
        tier: TierId,
        shard_idx: usize,
        lists: &crate::lists::TierLists,
        seen: &mut HashSet<u32>,
        violations: &mut Vec<InvariantViolation>,
    ) {
        {
            for kind in PageKind::ALL {
                let set = lists.set(kind);
                for (which, list) in [
                    (WhichList::Inactive, &set.inactive),
                    (WhichList::Active, &set.active),
                    (WhichList::Promote, &set.promote),
                ] {
                    for frame in list.iter() {
                        if !seen.insert(frame.raw()) {
                            violations.push(InvariantViolation {
                                frame,
                                message: "appears on more than one list".into(),
                            });
                            continue;
                        }
                        match self.state_of(frame) {
                            None => violations.push(InvariantViolation {
                                frame,
                                message: format!("on the {which} list but untracked"),
                            }),
                            Some(st) if st.list() != which => violations.push(InvariantViolation {
                                frame,
                                message: format!("state {st} but on the {which} list"),
                            }),
                            Some(st) => {
                                let flags = mem.frame(frame).flags();
                                let want_active = st.is_active();
                                let want_promote = st == PageState::Promote;
                                if flags.contains(PageFlags::ACTIVE) != want_active
                                    || flags.contains(PageFlags::PROMOTE) != want_promote
                                    || flags.contains(PageFlags::REFERENCED) != st.is_referenced()
                                {
                                    violations.push(InvariantViolation {
                                        frame,
                                        message: format!(
                                            "flags {flags:?} disagree with state {st}"
                                        ),
                                    });
                                }
                            }
                        }
                        if mem.frame(frame).tier() != tier {
                            violations.push(InvariantViolation {
                                frame,
                                message: format!(
                                    "listed under {tier} but physically in {}",
                                    mem.frame(frame).tier()
                                ),
                            });
                        }
                        if mem.frame(frame).kind() != kind {
                            violations.push(InvariantViolation {
                                frame,
                                message: "listed under the wrong page kind".into(),
                            });
                        }
                        // 7. static frame→shard assignment is respected.
                        if self.shard_of(frame) != shard_idx {
                            violations.push(InvariantViolation {
                                frame,
                                message: format!(
                                    "listed in shard {shard_idx} but assigned to shard {}",
                                    self.shard_of(frame)
                                ),
                            });
                        }
                    }
                }
            }
            for frame in lists.unevictable.iter() {
                if !seen.insert(frame.raw()) {
                    violations.push(InvariantViolation {
                        frame,
                        message: "appears on more than one list".into(),
                    });
                }
                if self.state_of(frame) != Some(PageState::Unevictable) {
                    violations.push(InvariantViolation {
                        frame,
                        message: "on the unevictable list without Unevictable state".into(),
                    });
                }
                if self.shard_of(frame) != shard_idx {
                    violations.push(InvariantViolation {
                        frame,
                        message: format!(
                            "listed in shard {shard_idx} but assigned to shard {}",
                            self.shard_of(frame)
                        ),
                    });
                }
            }
        }
    }

    /// Debug-build self-check, wired after every scan, migrate and
    /// reclaim step: asserts the full invariant set via `debug_assert!`,
    /// so release builds compile it out entirely (the check is O(frames)
    /// and would dominate the simulation).
    #[inline]
    pub(crate) fn debug_validate(&self, mem: &MemorySystem) {
        // Nested steps (a promotion making room downstairs, a demotion
        // cascading) run while the outer step holds legitimately detached
        // in-flight pages, so validate only at quiescent points: when no
        // pressure run is active anywhere and nothing is mid-migration.
        if self.in_flight > 0 || self.pressure_guard.iter().any(|g| *g) {
            return;
        }
        debug_assert!(
            self.check_invariants(mem).is_empty(),
            "MULTI-CLOCK invariant violations:\n{}",
            self.check_invariants(mem)
                .iter()
                .map(|x| format!("  {x}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Panics with a readable report if any invariant is violated.
    ///
    /// # Panics
    ///
    /// Panics when [`Self::check_invariants`] finds anything.
    pub fn assert_invariants(&self, mem: &MemorySystem) {
        let v = self.check_invariants(mem);
        assert!(
            v.is_empty(),
            "MULTI-CLOCK invariant violations:\n{}",
            v.iter()
                .map(|x| format!("  {x}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MultiClockConfig;
    use mc_mem::{AccessKind, MemConfig, Nanos, TieringPolicy, VPage};

    #[test]
    fn fresh_policy_is_consistent() {
        let mem = MemorySystem::new(MemConfig::two_tier(32, 64));
        let mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        assert!(mc.check_invariants(&mem).is_empty());
    }

    #[test]
    fn consistent_after_activity() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(32, 128));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page(mc_mem::PageKind::Anon) {
            mem.map(VPage::new(v), f).unwrap();
            mc.on_page_mapped(&mut mem, f);
            v += 1;
        }
        for s in 1..=5u64 {
            for touched in 0..v / 2 {
                mem.access(VPage::new(touched), AccessKind::Read).unwrap();
            }
            mc.tick(&mut mem, Nanos::from_secs(s));
            mc.assert_invariants(&mem);
        }
    }

    #[test]
    fn violation_is_detected() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(32, 64));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let f = mem.alloc_page(mc_mem::PageKind::Anon).unwrap();
        mem.map(VPage::new(1), f).unwrap();
        mc.on_page_mapped(&mut mem, f);
        // Corrupt the flag mirror.
        mem.frame_flags_mut(f).insert(PageFlags::PROMOTE);
        let violations = mc.check_invariants(&mem);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("disagree"));
        assert!(!format!("{}", violations[0]).is_empty());
    }
}
