//! Per-tier list sets.
//!
//! "Originally, each memory node maintains its own set of LRU lists:
//! anonymous inactive, anonymous active, file inactive, file active, and
//! unevictable. We added two lists: anonymous promote and file promote"
//! (paper §IV). [`TierLists`] is that structure, instantiated once per
//! tier (the paper runs its modified PFRA on each memory tier separately).

use mc_clock::IndexedList;
use mc_mem::{FrameId, PageKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of a tier's lists a page is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WhichList {
    /// The inactive LRU list.
    Inactive,
    /// The active LRU list.
    Active,
    /// MULTI-CLOCK's promote list.
    Promote,
    /// The unevictable list.
    Unevictable,
}

impl fmt::Display for WhichList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WhichList::Inactive => "inactive",
            WhichList::Active => "active",
            WhichList::Promote => "promote",
            WhichList::Unevictable => "unevictable",
        };
        f.write_str(s)
    }
}

/// The three evictable lists for one page kind (anon or file).
#[derive(Debug, Default, Clone)]
pub struct ListSet {
    /// The inactive LRU list (front = oldest).
    pub inactive: IndexedList,
    /// The active LRU list.
    pub active: IndexedList,
    /// The promote list.
    pub promote: IndexedList,
}

impl ListSet {
    /// Creates empty lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// The list named by `which`.
    ///
    /// # Panics
    ///
    /// Panics for [`WhichList::Unevictable`], which lives on the tier, not
    /// the per-kind set.
    pub fn list(&self, which: WhichList) -> &IndexedList {
        match which {
            WhichList::Inactive => &self.inactive,
            WhichList::Active => &self.active,
            WhichList::Promote => &self.promote,
            // lint: allow(panic) - documented "# Panics" contract; Unevictable is per tier
            WhichList::Unevictable => panic!("unevictable list is per tier, not per kind"),
        }
    }

    /// Mutable access to the list named by `which`.
    ///
    /// # Panics
    ///
    /// Panics for [`WhichList::Unevictable`].
    pub fn list_mut(&mut self, which: WhichList) -> &mut IndexedList {
        match which {
            WhichList::Inactive => &mut self.inactive,
            WhichList::Active => &mut self.active,
            WhichList::Promote => &mut self.promote,
            // lint: allow(panic) - documented "# Panics" contract; Unevictable is per tier
            WhichList::Unevictable => panic!("unevictable list is per tier, not per kind"),
        }
    }

    /// Total pages across the three lists.
    pub fn len(&self) -> usize {
        self.inactive.len() + self.active.len() + self.promote.len()
    }

    /// Whether all three lists are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether any of the three lists contains the frame.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.inactive.contains(frame) || self.active.contains(frame) || self.promote.contains(frame)
    }

    /// Removes the frame from whichever list holds it.
    pub fn remove(&mut self, frame: FrameId) -> bool {
        self.inactive.remove(frame) || self.active.remove(frame) || self.promote.remove(frame)
    }
}

/// All lists for one tier: anon + file sets and the shared unevictable
/// list.
#[derive(Debug, Default, Clone)]
pub struct TierLists {
    /// Lists for anonymous pages.
    pub anon: ListSet,
    /// Lists for file-backed pages.
    pub file: ListSet,
    /// Mlocked pages (not scanned, not migrated).
    pub unevictable: IndexedList,
}

impl TierLists {
    /// Creates empty tier lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// The list set for a page kind.
    pub fn set(&self, kind: PageKind) -> &ListSet {
        match kind {
            PageKind::Anon => &self.anon,
            PageKind::File => &self.file,
        }
    }

    /// Mutable list set for a page kind.
    pub fn set_mut(&mut self, kind: PageKind) -> &mut ListSet {
        match kind {
            PageKind::Anon => &mut self.anon,
            PageKind::File => &mut self.file,
        }
    }

    /// Total tracked pages on this tier (including unevictable).
    pub fn len(&self) -> usize {
        self.anon.len() + self.file.len() + self.unevictable.len()
    }

    /// Whether no page is tracked on this tier.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes a frame from whichever list holds it.
    pub fn remove(&mut self, frame: FrameId) -> bool {
        self.anon.remove(frame) || self.file.remove(frame) || self.unevictable.remove(frame)
    }

    /// Whether any list on this tier holds the frame.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.anon.contains(frame) || self.file.contains(frame) || self.unevictable.contains(frame)
    }
}

/// A tier's lists, split into independent per-node shards.
///
/// The paper runs `kpromoted` as a *per-node* daemon; HM-Keeper makes the
/// same point for scan scalability. Each shard owns a full [`TierLists`]
/// (anon/file × inactive/active/promote + unevictable) and is scanned
/// independently each tick. Frames are assigned to shards statically by
/// the policy (node-of-frame × configured shards-per-node), so a frame
/// lives on exactly one shard for as long as it stays in the tier. With
/// one shard this degenerates to exactly the unsharded structure.
#[derive(Debug, Clone)]
pub struct TierShards {
    shards: Vec<TierLists>,
}

impl TierShards {
    /// Creates `count` empty shards (`count` is clamped to at least 1).
    pub fn new(count: usize) -> Self {
        TierShards {
            shards: vec![TierLists::new(); count.max(1)],
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The lists of one shard.
    ///
    /// # Panics
    /// If `i >= shard_count()` — shard indices come from `shard_of`, which
    /// always reduces modulo the shard count.
    pub fn shard(&self, i: usize) -> &TierLists {
        // lint: allow(indexing) - caller contract documented above
        &self.shards[i]
    }

    /// Mutable lists of one shard.
    ///
    /// # Panics
    /// If `i >= shard_count()`, as for [`Self::shard`].
    pub fn shard_mut(&mut self, i: usize) -> &mut TierLists {
        // lint: allow(indexing) - caller contract documented above
        &mut self.shards[i]
    }

    /// Iterates the shards in order.
    pub fn shards(&self) -> impl Iterator<Item = &TierLists> {
        self.shards.iter()
    }

    /// Iterates the shards in order, mutably. The parallel scan executor
    /// uses this to split a tier into disjoint per-shard `&mut` borrows,
    /// one per scan job.
    pub fn shards_mut(&mut self) -> impl Iterator<Item = &mut TierLists> {
        self.shards.iter_mut()
    }

    /// Total tracked pages across all shards (including unevictable).
    pub fn len(&self) -> usize {
        self.shards.iter().map(TierLists::len).sum()
    }

    /// Whether no page is tracked on any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(TierLists::is_empty)
    }

    /// Whether any shard holds the frame.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.shards.iter().any(|s| s.contains(frame))
    }

    /// Whether any shard's set for `kind` holds the frame on list `which`.
    pub fn on_list(&self, kind: PageKind, which: WhichList, frame: FrameId) -> bool {
        self.shards.iter().any(|s| match which {
            WhichList::Unevictable => s.unevictable.contains(frame),
            WhichList::Inactive | WhichList::Active | WhichList::Promote => {
                s.set(kind).list(which).contains(frame)
            }
        })
    }

    /// Total length of list `which` for `kind` across shards
    /// ([`WhichList::Unevictable`] ignores `kind`).
    pub fn list_len(&self, kind: PageKind, which: WhichList) -> usize {
        self.shards
            .iter()
            .map(|s| match which {
                WhichList::Unevictable => s.unevictable.len(),
                WhichList::Inactive | WhichList::Active | WhichList::Promote => {
                    s.set(kind).list(which).len()
                }
            })
            .sum()
    }

    /// Whether any shard's unevictable list holds the frame.
    pub fn unevictable_contains(&self, frame: FrameId) -> bool {
        self.shards.iter().any(|s| s.unevictable.contains(frame))
    }

    /// Removes a frame from whichever shard and list holds it.
    pub fn remove(&mut self, frame: FrameId) -> bool {
        self.shards.iter_mut().any(|s| s.remove(frame))
    }
}

impl Default for TierShards {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FrameId {
        FrameId::new(i)
    }

    #[test]
    fn shards_aggregate_and_route() {
        let mut t = TierShards::new(2);
        t.shard_mut(0)
            .set_mut(PageKind::Anon)
            .inactive
            .push_back(f(1));
        t.shard_mut(1)
            .set_mut(PageKind::Anon)
            .promote
            .push_back(f(2));
        t.shard_mut(1).unevictable.push_back(f(3));
        assert_eq!(t.shard_count(), 2);
        assert_eq!(t.len(), 3);
        assert!(t.contains(f(1)) && t.contains(f(2)) && t.contains(f(3)));
        assert!(t.on_list(PageKind::Anon, WhichList::Inactive, f(1)));
        assert!(t.on_list(PageKind::Anon, WhichList::Promote, f(2)));
        assert!(!t.on_list(PageKind::File, WhichList::Promote, f(2)));
        assert!(t.on_list(PageKind::Anon, WhichList::Unevictable, f(3)));
        assert!(t.unevictable_contains(f(3)));
        assert_eq!(t.list_len(PageKind::Anon, WhichList::Promote), 1);
        assert!(t.remove(f(2)));
        assert!(!t.remove(f(2)));
        assert_eq!(t.list_len(PageKind::Anon, WhichList::Promote), 0);
    }

    #[test]
    fn zero_shard_count_clamps_to_one() {
        let t = TierShards::new(0);
        assert_eq!(t.shard_count(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn set_routing_by_kind() {
        let mut t = TierLists::new();
        t.set_mut(PageKind::Anon).inactive.push_back(f(1));
        t.set_mut(PageKind::File).active.push_back(f(2));
        assert!(t.set(PageKind::Anon).inactive.contains(f(1)));
        assert!(t.set(PageKind::File).active.contains(f(2)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_searches_everywhere() {
        let mut t = TierLists::new();
        t.anon.promote.push_back(f(1));
        t.file.inactive.push_back(f(2));
        t.unevictable.push_back(f(3));
        assert!(t.remove(f(1)));
        assert!(t.remove(f(2)));
        assert!(t.remove(f(3)));
        assert!(!t.remove(f(3)));
        assert!(t.is_empty());
    }

    #[test]
    fn which_list_lookup() {
        let mut s = ListSet::new();
        s.list_mut(WhichList::Promote).push_back(f(9));
        assert_eq!(s.list(WhichList::Promote).len(), 1);
        assert!(s.contains(f(9)));
        assert!(s.remove(f(9)));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "per tier")]
    fn unevictable_not_in_kind_set() {
        let s = ListSet::new();
        let _ = s.list(WhichList::Unevictable);
    }

    #[test]
    fn display_names() {
        assert_eq!(WhichList::Inactive.to_string(), "inactive");
        assert_eq!(WhichList::Promote.to_string(), "promote");
    }
}
