//! The `kpromoted` daemon: periodic list scanning, reference-bit
//! harvesting, and promote-list draining (paper §III-B, §IV).

use crate::executor::{run_scan_jobs, ScanCtx, ScanJob};
use crate::multi_clock::MultiClock;
use crate::state::PageState;
use mc_mem::{
    FrameId, MemError, MemorySystem, MigrationMode, Nanos, PageKind, TickOutcome, TierId,
};
use mc_obs::{saturating_add, saturating_bump, EventKind};

impl MultiClock {
    /// One `kpromoted` wake-up:
    ///
    /// 1. scan every list of every shard of every tier (up to
    ///    `scan_batch` pages per list — each shard models an independent
    ///    per-node daemon and gets its own full budget), harvesting PTE
    ///    reference bits and applying the Fig. 4 transitions — this is how
    ///    *unsupervised* (mmap) accesses are observed. The shard scans run
    ///    on the [`crate::executor`] (up to `scan_threads` workers, the
    ///    paper's concurrent per-node daemons) and their results are
    ///    merged in shard order, bit-identical to a sequential walk;
    /// 2. promote **all** pages on lower tiers' promote lists ("once a
    ///    page is selected for promotion, the page gets promoted to the
    ///    DRAM in the same kpromoted run"), in `migrate_batch_size`
    ///    batches;
    /// 3. run the reclaim path on any tier below its low watermark;
    /// 4. optionally adapt the scan interval (§VII extension).
    pub(crate) fn kpromoted_run(&mut self, mem: &mut MemorySystem, now: Nanos) -> TickOutcome {
        saturating_bump(&mut self.stats.ticks);
        let tick = self.stats.ticks;
        mem.set_now(now.as_nanos());
        mem.recorder_mut().emit(|| EventKind::TickBegin { tick });
        let mut out = TickOutcome::default();
        let tier_count = self.tiers.len();

        // Transactional mode: settle last tick's migration transactions
        // before anything else looks at the lists. The copy window
        // spanned the inter-tick application run; by now every copy has
        // either stayed clean (commit: atomic remap) or been dirtied
        // (abort: back into the retry/backoff path). A no-op in Sync
        // mode, where no transaction is ever opened.
        if self.cfg.migration_mode == MigrationMode::Transactional {
            out.promoted += self.settle_txns(mem);
        }
        // Host-time phase spans (no-ops when hooks are off). Cloning the
        // handle up front keeps the later `&mut self` phases borrowable;
        // spans only observe the host clock, never engine state.
        let perf = self.cfg.perf.clone();

        // Scan phase: snapshot the reference bits over the region map's
        // populated extents only (every tracked page lives inside one, so
        // the sparse snapshot reads exactly what a full walk would — at a
        // cost proportional to the working set, not the machine), run
        // every shard's scan as an independent job (workers write nothing
        // shared), then merge the per-shard outputs in (tier, shard)
        // order — the exact sequential nested-loop order, so stats,
        // events and state writes land identically regardless of
        // `scan_threads`.
        let referenced = mem.referenced_snapshot_ranges(&self.region_map.scan_ranges());
        let record = mem.recorder().is_enabled();
        let shard_outs = {
            let MultiClock {
                cfg, tiers, states, ..
            } = &mut *self;
            let ctx = ScanCtx {
                cfg,
                mem,
                states,
                referenced: &referenced,
                record,
            };
            let mut jobs = Vec::new();
            for (t, shards) in tiers.iter_mut().enumerate() {
                let tier = TierId::new(t as u8);
                for lists in shards.shards_mut() {
                    jobs.push(ScanJob { tier, lists });
                }
            }
            run_scan_jobs(jobs, ctx, cfg.scan_threads)
        };
        let merge_span = perf.as_ref().map(|p| p.span(mc_obs::Phase::Merge));
        for so in shard_outs {
            out.pages_scanned += so.pages_scanned;
            saturating_add(&mut self.stats.ladder_decays, so.ladder_decays);
            saturating_add(&mut self.stats.promote_ages, so.promote_ages);
            saturating_add(&mut self.stats.activations, so.activations);
            saturating_add(&mut self.stats.promote_enqueues, so.promote_enqueues);
            mem.recorder_mut().replay(so.events.into_events());
            for (frame, st) in so.state_changes {
                self.states[frame.index()] = Some(st);
                if st != PageState::Promote {
                    // Leaving the promote list ends the promotion episode
                    // (invariant 6: retry state exists only for
                    // Promote-state pages).
                    self.retry_state[frame.index()] = None;
                }
                self.sync_flags(mem, frame, st);
            }
            // Deferred test-and-clear: consume the reference bits the scan
            // observed, before the promote/pressure phases can look. The
            // returned bool (was it set?) is deliberately dropped — the scan
            // already recorded the observation; this call only clears.
            // Each consumed bit also heats the frame's region: the
            // unsupervised-access channel of the region profiler.
            for frame in so.harvested {
                let _ = mem.harvest_referenced(frame);
                self.region_map.record_heat(frame, 1);
            }
        }
        drop(merge_span);

        // Drain promote lists bottom-up relative to their target: tier 1
        // promotes into tier 0 before tier 2 promotes into tier 1.
        let mut drain_span = perf.as_ref().map(|p| p.span(mc_obs::Phase::PromoteDrain));
        let mut promoted = 0u64;
        for tier in 1..tier_count {
            promoted += self.promote_all(mem, TierId::new(tier as u8));
        }
        out.promoted += promoted;
        if let Some(s) = drain_span.as_mut() {
            s.add_items(promoted);
        }
        drop(drain_span);

        // kswapd-style balancing: react to watermark pressure.
        let mut pressure_span = perf.as_ref().map(|p| p.span(mc_obs::Phase::Pressure));
        for tier in 0..tier_count {
            let tier = TierId::new(tier as u8);
            if mem.tier_under_pressure(tier) {
                let p = self.run_pressure(mem, tier, true);
                out.pages_scanned += p.pages_scanned;
                out.demoted += p.demoted;
                out.promoted += p.promoted;
                if let Some(s) = pressure_span.as_mut() {
                    s.add_items(p.demoted + p.promoted);
                }
            }
        }
        drop(pressure_span);

        saturating_add(&mut self.stats.pages_scanned, out.pages_scanned);
        // Region adaptation: split the regions that ran hot this window,
        // merge the ones that stayed cold, and (when the churn-interval
        // extension is on) fold tracked-set churn into the reschedule
        // signal so a map in flux keeps the scanner awake even when no
        // page crossed a tier.
        self.region_map.rebalance();
        let churn = self.region_map.take_churn();
        let mut activity = out.promoted + out.demoted;
        if self.cfg.regions.churn_interval {
            activity += churn;
        }
        self.adapt_interval(activity);
        // Mirror the substrate's transaction/shadow counters into the
        // policy's vmstat rows (absolute values; all zero in Sync mode).
        let ms = mem.stats();
        self.stats.txn_begins = ms.txn_begins;
        self.stats.txn_aborts = ms.txn_aborts;
        self.stats.txn_commits = ms.txn_commits;
        self.stats.shadow_hits = ms.shadow_hits;
        self.stats.shadow_invalidations = ms.shadow_invalidations;
        self.debug_validate(mem);
        mem.recorder_mut().emit(|| EventKind::TickEnd {
            tick,
            scanned: out.pages_scanned,
            promoted: out.promoted,
            demoted: out.demoted,
        });
        out
    }

    /// Migrates every page on `tier`'s promote lists (all shards) to the
    /// next tier up (Fig. 4 transition 13), handing the memory system up
    /// to `migrate_batch_size` pages per call so the per-call setup cost
    /// is amortized. Returns the number of pages promoted.
    ///
    /// A page that cannot move (locked, or no room upstairs even after one
    /// round of reclaim there) falls back to the active list, as the paper
    /// prescribes. With `migrate_batch_size == 1` the migration call
    /// sequence is exactly the historical page-at-a-time behaviour.
    pub(crate) fn promote_all(&mut self, mem: &mut MemorySystem, tier: TierId) -> u64 {
        let Some(upper) = tier.upper() else {
            return 0;
        };
        let mut promoted = 0;
        let mut tried_reclaim = false;
        // Room for the whole candidate set is requested at once (gentle
        // reclaim only ever demotes scan-certified-cold pages, so asking
        // for more than exists is safe).
        let demand: usize = PageKind::ALL
            .iter()
            .map(|k| self.tiers[tier.index()].list_len(*k, crate::lists::WhichList::Promote))
            .sum();
        let batch = self.cfg.migrate_batch_size;
        for shard in 0..self.tiers[tier.index()].shard_count() {
            for kind in PageKind::ALL {
                let mut candidates = self.tiers[tier.index()]
                    .shard_mut(shard)
                    .set_mut(kind)
                    .promote
                    .drain();
                // Rotate the drain order each run. Candidate order is
                // otherwise a stable cycle (scan rotation is deterministic),
                // and when room is scarcer than candidates the same prefix
                // would win every run, starving equally-worthy pages; in a
                // real kernel timing jitter provides this fairness.
                if !candidates.is_empty() {
                    let shift = self.stats.ticks as usize % candidates.len();
                    candidates.rotate_left(shift);
                }
                // §VII write-weight extension: dirtiness joins the
                // importance formula at *placement* time — when slots
                // upstairs are scarce, write-hot pages (whose lower-tier
                // stores are the most expensive accesses) get first claim.
                if self.cfg.write_weight > 1.0 {
                    candidates.sort_by_key(|f| {
                        std::cmp::Reverse(mem.frame(*f).flags().contains(mc_mem::PageFlags::DIRTY))
                    });
                }
                // The drained candidates are tracked but on no list until
                // each is retracked below; suspend invariant validation.
                self.in_flight += candidates.len();
                let drained = candidates.len();
                if drained > 0 {
                    mem.recorder_mut().emit(|| EventKind::PromoteDrain {
                        tier: tier.index() as u8,
                        drained: drained as u32,
                    });
                }
                let mut pending: Vec<FrameId> = Vec::with_capacity(batch.min(drained.max(1)));
                for frame in candidates {
                    // A candidate still serving a retry backoff is requeued
                    // at the tail untouched; its next attempt waits for
                    // `eligible_tick`.
                    if let Some(rs) = self.retry_state[frame.index()] {
                        if rs.eligible_tick > self.stats.ticks {
                            self.tiers[tier.index()]
                                .shard_mut(shard)
                                .set_mut(kind)
                                .promote
                                .push_back(frame);
                            self.in_flight -= 1;
                            continue;
                        }
                    }
                    // drain() detached the page; the state table still says
                    // Promote. Batch it up; a full batch flushes at once.
                    pending.push(frame);
                    if pending.len() >= batch {
                        promoted += self.promote_flush(
                            mem,
                            &mut pending,
                            tier,
                            upper,
                            kind,
                            &mut tried_reclaim,
                            demand,
                        );
                    }
                }
                promoted += self.promote_flush(
                    mem,
                    &mut pending,
                    tier,
                    upper,
                    kind,
                    &mut tried_reclaim,
                    demand,
                );
            }
        }
        self.debug_validate(mem);
        promoted
    }

    /// Settles every migration transaction opened by the previous run:
    /// clean copies commit (one atomic remap each — transition 13,
    /// exactly like a synchronous promotion landing), doomed or faulted
    /// copies abort and re-enter the retry/backoff path as if a
    /// synchronous attempt had failed with the same error. Returns the
    /// number of pages promoted.
    pub(crate) fn settle_txns(&mut self, mem: &mut MemorySystem) -> u64 {
        if self.txn_pending.is_empty() {
            return 0;
        }
        let keep_shadows = self.cfg.shadow_pages;
        let results = mem.resolve_migrations(keep_shadows);
        // Every pending frame is tracked but listless until its result
        // re-lists it below; suspend invariant validation meanwhile.
        self.in_flight += results.len();
        let mut promoted = 0;
        for (frame, result) in results {
            self.txn_pending.retain(|f| *f != frame);
            match result {
                Ok(new_frame) => {
                    // fig4: 13 — the commit lands active-referenced
                    // upstairs, same as a synchronous promotion.
                    let upper = mem.frame(new_frame).tier();
                    self.retrack_after_migration(mem, frame, new_frame, PageState::ActiveRef);
                    saturating_bump(&mut self.stats.promotions);
                    promoted += 1;
                    mem.recorder_mut().emit(|| EventKind::Fig4 {
                        edge: 13,
                        frame: new_frame.index() as u64,
                        tier: upper.index() as u8,
                    });
                }
                // A dirty-write abort surfaces as FrameLocked (the page
                // was "busy" during the window); a commit-time injected
                // fault surfaces as TierFull/FrameLocked. Both are
                // transient — same retry budget as the sync path.
                Err(MemError::TierFull(_) | MemError::FrameLocked(_)) => {
                    let tier = mem.frame(frame).tier();
                    let kind = mem.frame(frame).kind();
                    self.promote_retry_or_fallback(mem, frame, tier, kind);
                }
                Err(_) => {
                    let tier = mem.frame(frame).tier();
                    let kind = mem.frame(frame).kind();
                    self.promote_fallback(mem, frame, tier, kind);
                }
            }
            self.in_flight -= 1;
        }
        debug_assert!(
            self.txn_pending.is_empty(),
            "every opened transaction must settle (eager substrate aborts \
             purge txn_pending via untrack)"
        );
        self.debug_validate(mem);
        promoted
    }

    /// Flushes one batch of promote candidates through
    /// [`MemorySystem::migrate_batch`] and settles every page: successes
    /// are retracked upstairs (transition 13), transient failures requeue
    /// or fall back via the retry policy, permanent failures fall back to
    /// the active list. Returns the number promoted.
    ///
    /// In [`MigrationMode::Transactional`] this instead *opens* one
    /// transaction per candidate — no copy stall, no remap yet — and the
    /// batch settles at the start of the next run.
    #[allow(clippy::too_many_arguments)]
    fn promote_flush(
        &mut self,
        mem: &mut MemorySystem,
        pending: &mut Vec<FrameId>,
        tier: TierId,
        upper: TierId,
        kind: PageKind,
        tried_reclaim: &mut bool,
        demand: usize,
    ) -> u64 {
        if pending.is_empty() {
            return 0;
        }
        if self.cfg.migration_mode == MigrationMode::Transactional {
            return self.promote_flush_txn(mem, pending, tier, upper, kind, tried_reclaim, demand);
        }
        let mut promoted = 0;
        // Span over the batched migration call itself (items = batch
        // length); the per-page settle loop below is accounted to the
        // surrounding promote-drain span.
        let mut batch_span = self
            .cfg
            .perf
            .as_ref()
            .map(|p| p.span(mc_obs::Phase::MigrateBatch));
        if let Some(s) = batch_span.as_mut() {
            s.add_items(pending.len() as u64);
        }
        let results = mem.migrate_batch(pending, upper);
        drop(batch_span);
        for (frame, result) in pending.drain(..).zip(results) {
            match result {
                Ok(new_frame) => {
                    // fig4: 13 — promotion lands active-referenced.
                    self.retrack_after_migration(mem, frame, new_frame, PageState::ActiveRef);
                    saturating_bump(&mut self.stats.promotions);
                    promoted += 1;
                    mem.recorder_mut().emit(|| EventKind::Fig4 {
                        edge: 13,
                        frame: new_frame.index() as u64,
                        tier: upper.index() as u8,
                    });
                }
                Err(MemError::TierFull(_)) => {
                    // "If the higher-performing tier is also under
                    // memory pressure, promotions from the lower tier
                    // result in immediate page demotions from the
                    // higher tier." Room-making is *gentle* (only
                    // truly cold pages move down) and attempted once
                    // per run; when the upper tier is all-hot the
                    // remaining candidates fall back to the active
                    // list instead of displacing hot pages.
                    if !*tried_reclaim && !self.pressure_guard[upper.index()] {
                        *tried_reclaim = true;
                        self.run_pressure_toward(mem, upper, false, Some(demand));
                    }
                    match mem.migrate(frame, upper) {
                        Ok(new_frame) => {
                            self.retrack_after_migration(
                                mem,
                                frame,
                                new_frame,
                                PageState::ActiveRef,
                            );
                            saturating_bump(&mut self.stats.promotions);
                            promoted += 1;
                            mem.recorder_mut().emit(|| EventKind::Fig4 {
                                edge: 13,
                                frame: new_frame.index() as u64,
                                tier: upper.index() as u8,
                            });
                        }
                        // Still-full destination and transient locks
                        // are retryable; anything else is permanent.
                        Err(MemError::TierFull(_) | MemError::FrameLocked(_)) => {
                            self.promote_retry_or_fallback(mem, frame, tier, kind);
                        }
                        Err(_) => self.promote_fallback(mem, frame, tier, kind),
                    }
                }
                // A locked page may come unlocked (the kernel's
                // `-EAGAIN`): retryable within the episode's budget.
                Err(MemError::FrameLocked(_)) => {
                    self.promote_retry_or_fallback(mem, frame, tier, kind);
                }
                Err(_) => self.promote_fallback(mem, frame, tier, kind),
            }
            self.in_flight -= 1;
        }
        promoted
    }

    /// The transactional drain: opens a Nomad-style transaction per
    /// candidate instead of copying synchronously. Reservation failures
    /// (the destination is full) get the same one-round gentle reclaim
    /// and single retry the sync path uses; pages whose transaction
    /// opens move to `txn_pending` and stay mapped at the source — the
    /// application keeps running against the source frame for the whole
    /// copy window. Returns 0: promotions are counted at commit time.
    #[allow(clippy::too_many_arguments)]
    fn promote_flush_txn(
        &mut self,
        mem: &mut MemorySystem,
        pending: &mut Vec<FrameId>,
        tier: TierId,
        upper: TierId,
        kind: PageKind,
        tried_reclaim: &mut bool,
        demand: usize,
    ) -> u64 {
        for frame in pending.drain(..) {
            match mem.begin_migration(frame, upper) {
                Ok(()) => self.txn_pending.push(frame),
                Err(MemError::TierFull(_)) => {
                    // Same room-making as the sync path: one gentle
                    // reclaim round upstairs, then a single retry.
                    if !*tried_reclaim && !self.pressure_guard[upper.index()] {
                        *tried_reclaim = true;
                        self.run_pressure_toward(mem, upper, false, Some(demand));
                    }
                    match mem.begin_migration(frame, upper) {
                        Ok(()) => self.txn_pending.push(frame),
                        Err(MemError::TierFull(_) | MemError::FrameLocked(_)) => {
                            self.promote_retry_or_fallback(mem, frame, tier, kind);
                        }
                        Err(_) => self.promote_fallback(mem, frame, tier, kind),
                    }
                }
                Err(MemError::FrameLocked(_)) => {
                    self.promote_retry_or_fallback(mem, frame, tier, kind);
                }
                Err(_) => self.promote_fallback(mem, frame, tier, kind),
            }
            self.in_flight -= 1;
        }
        0
    }

    /// Books a failed-but-retryable migration attempt: while the episode's
    /// retry budget lasts, the page is requeued at the promote-list tail
    /// with an exponentially backed-off eligibility tick; once the budget
    /// is exhausted the daemon gives up and degrades to the active-list
    /// fallback. Either way the page is never dropped.
    fn promote_retry_or_fallback(
        &mut self,
        mem: &mut MemorySystem,
        frame: mc_mem::FrameId,
        tier: TierId,
        kind: PageKind,
    ) {
        let attempts = self.retry_state[frame.index()]
            .map_or(0, |r| r.attempts)
            .saturating_add(1);
        if self.cfg.retry.exhausted(attempts) {
            self.retry_state[frame.index()] = None;
            saturating_bump(&mut self.stats.promote_gave_ups);
            mem.recorder_mut().emit(|| EventKind::MigrateGaveUp {
                frame: frame.index() as u64,
                attempts,
            });
            self.promote_fallback(mem, frame, tier, kind);
            return;
        }
        let eligible_tick = self
            .stats
            .ticks
            .saturating_add(self.cfg.retry.backoff_ticks(attempts));
        self.retry_state[frame.index()] = Some(crate::multi_clock::RetryState {
            attempts,
            eligible_tick,
        });
        saturating_bump(&mut self.stats.promote_retries);
        // Tail requeue: fresh candidates drain first, and the page keeps
        // its Promote state (the episode is paused, not abandoned).
        self.shard_lists_mut(tier, frame)
            .set_mut(kind)
            .promote
            .push_back(frame);
        mem.recorder_mut().emit(|| EventKind::MigrateRetry {
            frame: frame.index() as u64,
            attempt: attempts,
            eligible_tick,
        });
    }

    /// The failed-promotion fallback: the page moves to its tier's active
    /// list.
    fn promote_fallback(
        &mut self,
        mem: &mut MemorySystem,
        frame: mc_mem::FrameId,
        tier: TierId,
        kind: PageKind,
    ) {
        self.retry_state[frame.index()] = None;
        saturating_bump(&mut self.stats.promote_fallbacks);
        // fig4: 11 — no room upstairs; rejoin active as referenced.
        self.shard_lists_mut(tier, frame)
            .set_mut(kind)
            .active
            .push_back(frame);
        self.states[frame.index()] = Some(PageState::ActiveRef);
        self.sync_flags(mem, frame, PageState::ActiveRef);
        mem.recorder_mut().emit(|| EventKind::Fig4 {
            edge: 11,
            frame: frame.index() as u64,
            tier: tier.index() as u8,
        });
    }

    /// The §VII adaptive-interval extension: back off exponentially while
    /// the workload is stable (no promotions), snap back to the
    /// configured interval the moment tiering work reappears. The goal is
    /// to save scan CPU in steady phases without giving up reaction time.
    /// The churn-interval extension reuses the same machinery with
    /// region churn folded into `activity`, so a daemon whose tracked
    /// set is in flux reschedules itself eagerly.
    fn adapt_interval(&mut self, activity: u64) {
        if !self.cfg.adaptive_interval && !self.cfg.regions.churn_interval {
            return;
        }
        if activity == 0 {
            self.idle_ticks += 1;
            if self.idle_ticks >= 8 {
                let doubled = Nanos::from_nanos(self.current_interval.as_nanos() * 2);
                self.current_interval = doubled.min(self.cfg.max_interval);
                self.idle_ticks = 0;
            }
        } else {
            self.idle_ticks = 0;
            self.current_interval = self.cfg.scan_interval;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MultiClockConfig;
    use mc_mem::{AccessKind, MemConfig, TieringPolicy, VPage};

    fn setup() -> (MemorySystem, MultiClock) {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        (mem, mc)
    }

    /// Fault a page into a chosen tier and track it.
    fn map_in_tier(
        mem: &mut MemorySystem,
        mc: &mut MultiClock,
        v: u64,
        tier: TierId,
    ) -> mc_mem::FrameId {
        let f = mem
            .alloc_page_in_tier(mc_mem::PageKind::Anon, tier)
            .unwrap();
        mem.map(VPage::new(v), f).unwrap();
        mc.on_page_mapped(mem, f);
        f
    }

    #[test]
    fn unsupervised_hot_page_promotes_after_four_scans() {
        let (mut mem, mut mc) = setup();
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        // Touch the page each interval (sets the PTE reference bit only).
        for scan in 1..=3u64 {
            mem.access(VPage::new(1), AccessKind::Read).unwrap();
            mc.tick(&mut mem, Nanos::from_secs(scan));
            assert_eq!(mem.frame(f).tier(), pm, "not yet promoted at scan {scan}");
        }
        mem.access(VPage::new(1), AccessKind::Read).unwrap();
        let out = mc.tick(&mut mem, Nanos::from_secs(4));
        assert_eq!(out.promoted, 1);
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP, "page now in DRAM");
        assert_eq!(mc.state_of(nf), Some(PageState::ActiveRef));
        assert!(mc.tier_lists(TierId::TOP).shard(0).anon.active.contains(nf));
        assert_eq!(mc.stats().promotions, 1);
    }

    #[test]
    fn cold_page_is_never_promoted() {
        let (mut mem, mut mc) = setup();
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        for scan in 1..=10u64 {
            mc.tick(&mut mem, Nanos::from_secs(scan));
        }
        assert_eq!(mem.frame(f).tier(), pm);
        assert_eq!(mc.state_of(f), Some(PageState::InactiveUnref));
        assert_eq!(mc.stats().promotions, 0);
    }

    #[test]
    fn once_accessed_page_does_not_promote() {
        // The motivation (Fig. 2): pages accessed only once should not be
        // promotion candidates.
        let (mut mem, mut mc) = setup();
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        mem.access(VPage::new(1), AccessKind::Read).unwrap();
        for scan in 1..=10u64 {
            mc.tick(&mut mem, Nanos::from_secs(scan));
        }
        assert_eq!(mem.frame(f).tier(), pm);
        // One observation stepped the ladder once, and the decay of the
        // following unreferenced scans took it back down.
        assert_eq!(mc.state_of(f), Some(PageState::InactiveUnref));
        assert_eq!(mc.stats().ladder_decays, 1);
    }

    #[test]
    fn promote_list_ages_out_when_page_goes_cold_on_top_tier() {
        let (mut mem, mut mc) = setup();
        let f = map_in_tier(&mut mem, &mut mc, 1, TierId::TOP);
        for _ in 0..4 {
            mc.on_supervised_access(&mut mem, f, AccessKind::Read);
        }
        assert_eq!(mc.state_of(f), Some(PageState::Promote));
        // Top-tier promote pages cannot be promoted; an unreferenced scan
        // ages them back to active (transition 11).
        mc.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(mc.state_of(f), Some(PageState::ActiveUnref));
        assert_eq!(mc.stats().promote_ages, 1);
    }

    #[test]
    fn promote_list_page_still_hot_stays_until_promoted() {
        let (mut mem, mut mc) = setup();
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        // Climb to ActiveRef via supervised accesses, then one more access
        // puts it on the promote list; the same tick must promote it.
        for _ in 0..4 {
            mc.on_supervised_access(&mut mem, f, AccessKind::Read);
        }
        assert_eq!(mc.state_of(f), Some(PageState::Promote));
        let out = mc.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(out.promoted, 1);
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
    }

    #[test]
    fn locked_page_falls_back_to_active() {
        let (mut mem, mut mc) = setup();
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        for _ in 0..4 {
            mc.on_supervised_access(&mut mem, f, AccessKind::Read);
        }
        mem.frame_flags_mut(f).insert(mc_mem::PageFlags::LOCKED);
        let out = mc.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(out.promoted, 0);
        assert_eq!(mem.frame(f).tier(), pm, "locked page stays put");
        assert_eq!(mc.state_of(f), Some(PageState::ActiveRef));
        assert!(mc.tier_lists(pm).shard(0).anon.active.contains(f));
        assert_eq!(mc.stats().promote_fallbacks, 1);
    }

    /// Climbs a PM page to the promote list (4 supervised accesses).
    fn make_promotable(mem: &mut MemorySystem, mc: &mut MultiClock, f: mc_mem::FrameId) {
        for _ in 0..4 {
            mc.on_supervised_access(mem, f, AccessKind::Read);
        }
        assert_eq!(mc.state_of(f), Some(PageState::Promote));
    }

    fn setup_with_retry(retry: mc_fault::RetryPolicy) -> (MemorySystem, MultiClock) {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let cfg = MultiClockConfig {
            retry,
            ..Default::default()
        };
        let mc = MultiClock::new(cfg, mem.topology());
        (mem, mc)
    }

    #[test]
    fn promotion_resumes_within_one_period_after_tier_recovers() {
        use mc_fault::{FaultInjector, FaultPlan, RetryPolicy};
        let (mut mem, mut mc) = setup_with_retry(RetryPolicy {
            max_attempts: 10,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 1,
        });
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        make_promotable(&mut mem, &mut mc, f);
        mem.set_fault_injector(FaultInjector::new(FaultPlan::default(), 0));
        mem.fault_injector_mut().unwrap().set_tier_offline(0, true);

        let out = mc.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(out.promoted, 0);
        assert_eq!(mc.stats().promote_retries, 1);
        assert_eq!(mc.state_of(f), Some(PageState::Promote), "episode paused");
        assert!(
            mc.tier_lists(pm).shard(0).anon.promote.contains(f),
            "requeued"
        );
        mc.assert_invariants(&mem);

        // Tier back online: the very next kpromoted run promotes it.
        mem.fault_injector_mut().unwrap().set_tier_offline(0, false);
        let out = mc.tick(&mut mem, Nanos::from_secs(2));
        assert_eq!(out.promoted, 1);
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
        assert_eq!(mc.stats().promote_gave_ups, 0);
        mc.assert_invariants(&mem);
    }

    #[test]
    fn retries_exhaust_into_gave_up_and_active_fallback() {
        use mc_fault::{FaultInjector, FaultPlan, RetryPolicy};
        let (mut mem, mut mc) = setup_with_retry(RetryPolicy {
            max_attempts: 2,
            backoff_base_ticks: 0,
            backoff_cap_ticks: 0,
        });
        mem.recorder_mut().enable(256);
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        make_promotable(&mut mem, &mut mc, f);
        mem.set_fault_injector(FaultInjector::new(FaultPlan::default(), 0));
        mem.fault_injector_mut().unwrap().set_tier_offline(0, true);

        // Attempt 1 fails -> retry; the page must keep being referenced so
        // the top-tier ageing scan does not intervene (it is on PM anyway).
        mc.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(mc.stats().promote_retries, 1);
        // Attempt 2 fails -> budget exhausted -> graceful degradation.
        mc.tick(&mut mem, Nanos::from_secs(2));
        assert_eq!(mc.stats().promote_gave_ups, 1);
        assert_eq!(mc.stats().promote_fallbacks, 1);
        assert_eq!(mc.state_of(f), Some(PageState::ActiveRef));
        assert!(mc.tier_lists(pm).shard(0).anon.active.contains(f));
        assert_eq!(mem.translate(VPage::new(1)), Some(f), "page never lost");
        mc.assert_invariants(&mem);

        let names: Vec<&str> = mem.recorder().events().map(|e| e.kind.name()).collect();
        assert!(names.contains(&"migrate_retry"));
        assert!(names.contains(&"migrate_gave_up"));
    }

    #[test]
    fn backoff_defers_attempts_until_eligible_tick() {
        use mc_fault::{FaultInjector, FaultPlan, RetryPolicy};
        let (mut mem, mut mc) = setup_with_retry(RetryPolicy {
            max_attempts: 10,
            backoff_base_ticks: 2,
            backoff_cap_ticks: 8,
        });
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        make_promotable(&mut mem, &mut mc, f);
        mem.set_fault_injector(FaultInjector::new(FaultPlan::default(), 0));
        mem.fault_injector_mut().unwrap().set_tier_offline(0, true);

        // Tick 1: attempt 1 fails (the promote path tries the migration,
        // reclaims, and retries once, so one episode can reject more than
        // once); eligible again at tick 3.
        mc.tick(&mut mem, Nanos::from_secs(1));
        let after_first = mem.fault_injector().unwrap().stats().offline_rejections;
        assert!(after_first >= 1);
        assert_eq!(mc.stats().promote_retries, 1);
        // Tick 2: still backing off — no migration attempt at all.
        mc.tick(&mut mem, Nanos::from_secs(2));
        assert_eq!(
            mem.fault_injector().unwrap().stats().offline_rejections,
            after_first,
            "deferred candidate must not touch the memory system"
        );
        assert!(mc.tier_lists(pm).shard(0).anon.promote.contains(f));
        // Tick 3: eligible again — attempt 2 fires (and fails).
        mc.tick(&mut mem, Nanos::from_secs(3));
        assert!(mem.fault_injector().unwrap().stats().offline_rejections > after_first);
        assert_eq!(mc.stats().promote_retries, 2);
        mc.assert_invariants(&mem);
    }

    fn setup_transactional(retry: mc_fault::RetryPolicy) -> (MemorySystem, MultiClock) {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let cfg = MultiClockConfig {
            migration_mode: MigrationMode::Transactional,
            retry,
            ..Default::default()
        };
        let mc = MultiClock::new(cfg, mem.topology());
        (mem, mc)
    }

    #[test]
    fn transactional_promotion_commits_on_the_next_tick() {
        let (mut mem, mut mc) = setup_transactional(mc_fault::RetryPolicy::immediate());
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        make_promotable(&mut mem, &mut mc, f);
        // Tick 1 opens the transaction: no copy stall, the page still
        // mapped (and served) at the source for the whole window.
        let out = mc.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(out.promoted, 0);
        assert_eq!(mc.txn_pending(), &[f]);
        assert_eq!(mem.translate(VPage::new(1)), Some(f), "still at source");
        assert_eq!(mc.stats().txn_begins, 1);
        mc.assert_invariants(&mem);
        // Tick 2 settles: the copy stayed clean, so it commits.
        let out = mc.tick(&mut mem, Nanos::from_secs(2));
        assert_eq!(out.promoted, 1);
        assert!(mc.txn_pending().is_empty());
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
        // The commit landed ActiveRef at the start of the tick; the same
        // tick's scan then saw it unreferenced and decayed it one step.
        assert_eq!(mc.state_of(nf), Some(PageState::ActiveUnref));
        assert_eq!(mc.stats().promotions, 1);
        assert_eq!(mc.stats().txn_commits, 1);
        // The clean source frame stayed behind as a shadow copy.
        assert_eq!(mem.shadow_pages().get(nf), Some(f));
        mc.assert_invariants(&mem);
    }

    #[test]
    fn dirty_write_during_copy_window_reenters_retry_path() {
        let (mut mem, mut mc) = setup_transactional(mc_fault::RetryPolicy::backoff());
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        make_promotable(&mut mem, &mut mc, f);
        mc.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(mc.txn_pending(), &[f]);
        // A store hits the source mid-window: the copy is stale.
        mem.access(VPage::new(1), AccessKind::Write).unwrap();
        let out = mc.tick(&mut mem, Nanos::from_secs(2));
        assert_eq!(out.promoted, 0, "stale copy must not commit");
        assert_eq!(mc.stats().txn_aborts, 1);
        assert_eq!(mc.stats().promote_retries, 1, "abort re-enters retry path");
        assert_eq!(mc.state_of(f), Some(PageState::Promote), "episode paused");
        assert!(mc.tier_lists(pm).shard(0).anon.promote.contains(f));
        mc.assert_invariants(&mem);
        // Backoff elapses; the retry opens a fresh transaction and — with
        // no further writes — commits.
        mc.tick(&mut mem, Nanos::from_secs(3));
        let out = mc.tick(&mut mem, Nanos::from_secs(4));
        assert_eq!(out.promoted, 1);
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
        // The dirty write predates the retry's copy window, so the fresh
        // copy captured it: the source stays behind as a shadow and the
        // page's dirty bit resets against it.
        assert_eq!(mem.shadow_pages().get(nf), Some(f));
        assert!(!mem.frame(nf).flags().contains(mc_mem::PageFlags::DIRTY));
        mc.assert_invariants(&mem);
    }

    #[test]
    fn cold_clean_page_demotes_via_its_shadow() {
        let (mut mem, mut mc) = setup_transactional(mc_fault::RetryPolicy::immediate());
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        make_promotable(&mut mem, &mut mc, f);
        mc.tick(&mut mem, Nanos::from_secs(1));
        mc.tick(&mut mem, Nanos::from_secs(2));
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.shadow_pages().get(nf), Some(f));
        // Park the page cold on the inactive list (the slow route there
        // is several decay scans plus a rebalance; the landing state is
        // what matters to the demotion path), then fill DRAM so reclaim
        // has real pressure: the shadowed page is the oldest inactive
        // page, and its demotion must be a zero-copy flip back to the
        // retained frame.
        mc.transition(&mut mem, nf, PageState::InactiveUnref);
        let mut v = 100u64;
        while let Ok(extra) = mem.alloc_page_in_tier(mc_mem::PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), extra).unwrap();
            mc.on_page_mapped(&mut mem, extra);
            v += 1;
        }
        mc.on_pressure(&mut mem, TierId::TOP, Nanos::from_secs(9));
        assert_eq!(mem.stats().shadow_hits, 1);
        assert_eq!(
            mem.translate(VPage::new(1)),
            Some(f),
            "the page is back in its original frame without a copy"
        );
        assert_eq!(mc.state_of(f), Some(PageState::InactiveUnref));
        assert!(mem.shadow_pages().is_empty());
        mc.assert_invariants(&mem);
    }

    #[test]
    fn shadow_retention_can_be_disabled() {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let cfg = MultiClockConfig {
            migration_mode: MigrationMode::Transactional,
            shadow_pages: false,
            ..Default::default()
        };
        let mut mc = MultiClock::new(cfg, mem.topology());
        let mut mem = mem;
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut mc, 1, pm);
        let pm_free = mem.tier_free(pm);
        make_promotable(&mut mem, &mut mc, f);
        mc.tick(&mut mem, Nanos::from_secs(1));
        mc.tick(&mut mem, Nanos::from_secs(2));
        assert_eq!(mc.stats().txn_commits, 1);
        assert!(mem.shadow_pages().is_empty());
        assert_eq!(mem.tier_free(pm), pm_free + 1, "source freed at commit");
        mc.assert_invariants(&mem);
    }

    #[test]
    fn scan_respects_batch_budget() {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 2048));
        let cfg = MultiClockConfig {
            scan_batch: 16,
            ..Default::default()
        };
        let mut mc = MultiClock::new(cfg, mem.topology());
        let mut mem = mem;
        for v in 0..1000u64 {
            map_in_tier(&mut mem, &mut mc, v, TierId::new(1));
        }
        let out = mc.tick(&mut mem, Nanos::from_secs(1));
        // Only the PM anon inactive list is populated: 16 pages scanned.
        assert_eq!(out.pages_scanned, 16);
    }

    #[test]
    fn adaptive_interval_backs_off_when_idle() {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let cfg = MultiClockConfig {
            adaptive_interval: true,
            ..Default::default()
        };
        let mut mc = MultiClock::new(cfg, mem.topology());
        let mut mem = mem;
        let base = mc.tick_interval().unwrap();
        for s in 1..=9u64 {
            mc.tick(&mut mem, Nanos::from_secs(s));
        }
        assert!(mc.tick_interval().unwrap() > base, "interval backed off");
        assert!(mc.tick_interval().unwrap() <= mc.config().max_interval);
    }

    #[test]
    fn fixed_interval_never_changes() {
        let (mut mem, mut mc) = setup();
        for s in 1..=20u64 {
            mc.tick(&mut mem, Nanos::from_secs(s));
        }
        assert_eq!(mc.tick_interval(), Some(Nanos::from_secs(1)));
    }
}
