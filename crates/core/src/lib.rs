//! # multi-clock — the paper's contribution
//!
//! MULTI-CLOCK (Maruf et al., HPCA 2022) is a dynamic tiering system for
//! hybrid DRAM + persistent-memory machines. Its page-selection mechanism
//! captures **both recency and frequency** at CLOCK-level overhead by
//! adding one list and one flag to the kernel's page-reclaim machinery:
//!
//! * every tier keeps the usual `inactive` and `active` LRU lists (for
//!   anonymous and file-backed pages) **plus a new `promote` list**;
//! * a page that is observed referenced while already *active and
//!   referenced* moves to the promote list (`PagePromote` flag) — i.e. a
//!   page becomes a promotion candidate only after being seen referenced
//!   repeatedly in recent scans;
//! * a per-node daemon, **`kpromoted`**, wakes periodically (1 s default),
//!   harvests PTE reference bits, performs the list transitions of the
//!   paper's Fig. 4 state machine, and migrates every page on a lower
//!   tier's promote list up to DRAM;
//! * demotion rides the existing reclaim path: when a tier crosses its low
//!   watermark, unreferenced inactive pages are migrated down a tier
//!   instead of evicted (the lowest tier still evicts to storage).
//!
//! The [`MultiClock`] type implements [`mc_mem::TieringPolicy`] and is
//! driven by the `mc-sim` engine, but it can also be exercised directly
//! against a [`mc_mem::MemorySystem`]:
//!
//! ```
//! use mc_mem::{MemConfig, MemorySystem, PageKind, TieringPolicy, VPage, AccessKind, Nanos};
//! use multi_clock::{MultiClock, MultiClockConfig};
//!
//! # fn main() -> Result<(), mc_mem::MemError> {
//! let mut mem = MemorySystem::new(MemConfig::two_tier(128, 512));
//! let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
//!
//! // Fault in a page and let the policy track it.
//! let frame = mem.alloc_page(PageKind::Anon)?;
//! let vp = VPage::new(7);
//! mem.map(vp, frame)?;
//! mc.on_page_mapped(&mut mem, frame);
//!
//! // Touch it across several scan intervals: the page climbs
//! // inactive -> active -> promote.
//! for tick in 0..4 {
//!     mem.access(vp, AccessKind::Read)?;
//!     mc.tick(&mut mem, Nanos::from_secs(tick + 1));
//! }
//! # Ok(())
//! # }
//! ```

pub mod config;
pub(crate) mod executor;
pub mod lists;
pub mod multi_clock;
pub mod reclaim;
pub mod region;
pub mod scan;
pub mod state;
pub mod stats;
pub mod validate;

pub use config::{MultiClockConfig, RegionKnobs};
pub use lists::{ListSet, TierLists, TierShards, WhichList};
pub use multi_clock::MultiClock;
pub use region::{RegionMap, RegionStats};
pub use state::PageState;
pub use stats::MultiClockStats;
pub use validate::InvariantViolation;
