//! The demotion/reclaim path (paper §III-C).
//!
//! When a tier crosses its low watermark it is reclaimed until balanced:
//!
//! 1. promote-list pages are migrated up (or parked on the active list if
//!    that is impossible);
//! 2. while the active:inactive ratio exceeds PFRA's `sqrt(10n):1`
//!    threshold, unreferenced active pages are deactivated (transition 9);
//! 3. the inactive list is shrunk from its cold end: unreferenced pages
//!    are migrated to the next lower tier (transition 3) or, on the lowest
//!    tier, written back / swapped out (the paper's eviction fallback).

use crate::multi_clock::MultiClock;
use crate::state::PageState;
use mc_clock::balance::inactive_is_low;
use mc_mem::{FrameId, MemError, MemorySystem, MigrationMode, PageKind, TickOutcome, TierId};
use mc_obs::{saturating_bump, EventKind};

/// What one inactive-list shrink step achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShrinkResult {
    /// The page was migrated down a tier.
    Demoted,
    /// The page was evicted to backing storage.
    Evicted,
    /// The page was referenced/unmovable and rotated back.
    Rotated,
    /// The list was empty.
    Empty,
}

impl MultiClock {
    /// Reclaims `tier` until it is back above its high watermark, the
    /// reclaim budget is exhausted, or nothing more can be moved.
    ///
    /// `force` distinguishes real memory pressure (allocation failures,
    /// watermark breaches — reclaim *must* free memory, deactivating
    /// not-recently-referenced pages if the inactive lists run dry) from
    /// promotion-driven room-making, which is gentle: it only demotes
    /// pages that are genuinely cold, and lets promotions fall back to
    /// the active list when the upper tier is all-hot. Without this
    /// distinction a warm-page promotion storm would strip the hot core
    /// out of DRAM (each reclaim pass runs between reference-bit
    /// harvests, so it cannot see that those pages are being re-touched
    /// continuously).
    pub(crate) fn run_pressure(
        &mut self,
        mem: &mut MemorySystem,
        tier: TierId,
        force: bool,
    ) -> TickOutcome {
        self.run_pressure_toward(mem, tier, force, None)
    }

    /// [`Self::run_pressure`] with an explicit free-page goal: gentle
    /// (promotion-driven) reclaim passes the number of promotion
    /// candidates wanting room, so a big batch of worthy pages is not
    /// starved by the small watermark gap.
    pub(crate) fn run_pressure_toward(
        &mut self,
        mem: &mut MemorySystem,
        tier: TierId,
        force: bool,
        want_free: Option<usize>,
    ) -> TickOutcome {
        let mut out = TickOutcome::default();
        if self.pressure_guard[tier.index()] {
            return out;
        }
        self.pressure_guard[tier.index()] = true;
        saturating_bump(&mut self.stats.pressure_runs);
        let evictions_before = self.stats.evictions;

        // Step 1: the promote list goes first — up if possible, otherwise
        // those pages join the active list.
        if tier.is_top() {
            self.flush_promote_to_active(mem, tier);
        } else {
            out.promoted += self.promote_all(mem, tier);
        }

        let mut budget = self.cfg.reclaim_batch;

        // Step 2: rebalance active vs inactive.
        out.pages_scanned += self.rebalance_lists(mem, tier, &mut budget, force);

        // Step 3: shrink the inactive lists until the tier is balanced
        // (or, for goal-directed gentle reclaim, has the requested room).
        let goal_met = |mem: &MemorySystem| match want_free {
            Some(want) => mem.tier_free(tier) >= want,
            None => mem.tier_balanced(tier),
        };
        while !goal_met(mem) && budget > 0 {
            let mut progressed = false;
            for kind in PageKind::ALL {
                if budget == 0 {
                    break;
                }
                match self.shrink_inactive_any(mem, tier, kind, force) {
                    ShrinkResult::Demoted => {
                        out.demoted += 1;
                        out.pages_scanned += 1;
                        budget -= 1;
                        progressed = true;
                    }
                    ShrinkResult::Evicted => {
                        out.pages_scanned += 1;
                        budget -= 1;
                        progressed = true;
                    }
                    ShrinkResult::Rotated => {
                        out.pages_scanned += 1;
                        budget -= 1;
                        progressed = true;
                    }
                    ShrinkResult::Empty => {}
                }
            }
            if !progressed {
                if !force {
                    // Gentle mode: out of genuinely cold pages - stop.
                    break;
                }
                // Inactive lists are empty: deactivate regardless of the
                // ratio so reclaim can continue, or give up if even the
                // active lists are empty.
                let mut refilled = false;
                for kind in PageKind::ALL {
                    if budget == 0 {
                        break;
                    }
                    if self.shrink_active_any(mem, tier, kind, force) {
                        budget -= 1;
                        out.pages_scanned += 1;
                        refilled = true;
                    }
                }
                if !refilled {
                    break;
                }
            }
        }

        // Demotions drained the inactive list; restore the ratio so the
        // next reclaim pass has cold candidates ready.
        out.pages_scanned += self.rebalance_lists(mem, tier, &mut budget, force);

        self.pressure_guard[tier.index()] = false;
        self.debug_validate(mem);
        let freed = out.demoted + (self.stats.evictions - evictions_before);
        mem.recorder_mut().emit(|| EventKind::PressureRun {
            tier: tier.index() as u8,
            freed: freed.min(u64::from(u32::MAX)) as u32,
        });
        out
    }

    /// Deactivates unreferenced active pages while the inactive list is
    /// too small (PFRA's `sqrt(10n):1` rule). Returns pages scanned.
    ///
    /// Each call examines each active list at most once end-to-end: if
    /// every active page is protected by its referenced state, the ratio
    /// stays violated and reclaim simply has nothing cold to offer.
    fn rebalance_lists(
        &mut self,
        mem: &mut MemorySystem,
        tier: TierId,
        budget: &mut usize,
        force: bool,
    ) -> u64 {
        let tier_pages = mem.topology().tier(tier).pages();
        let mut scanned = 0;
        for shard in 0..self.tiers[tier.index()].shard_count() {
            for kind in PageKind::ALL {
                let mut visits = self.tiers[tier.index()].shard(shard).set(kind).active.len();
                while *budget > 0 && visits > 0 {
                    let set = self.tiers[tier.index()].shard(shard).set(kind);
                    if !inactive_is_low(set.active.len(), set.inactive.len(), tier_pages) {
                        break;
                    }
                    if !self.shrink_active_one(mem, tier, shard, kind, force) {
                        break;
                    }
                    visits -= 1;
                    *budget -= 1;
                    scanned += 1;
                }
            }
        }
        scanned
    }

    /// Moves every promote-list page of the top tier to its active list
    /// (promotion is impossible there).
    fn flush_promote_to_active(&mut self, mem: &mut MemorySystem, tier: TierId) {
        for shard in 0..self.tiers[tier.index()].shard_count() {
            for kind in PageKind::ALL {
                let pages = self.tiers[tier.index()]
                    .shard_mut(shard)
                    .set_mut(kind)
                    .promote
                    .drain();
                for frame in pages {
                    // fig4: 11 — flush: promote pages rejoin the active
                    // list. Promote pages were referenced repeatedly; parking
                    // them as ActiveRef keeps the hot core two decay steps
                    // away from deactivation (otherwise reclaim would demote
                    // the hottest pages of the tier right after flushing
                    // them).
                    self.tiers[tier.index()]
                        .shard_mut(shard)
                        .set_mut(kind)
                        .active
                        .push_back(frame);
                    self.states[frame.index()] = Some(PageState::ActiveRef);
                    self.sync_flags(mem, frame, PageState::ActiveRef);
                    mem.recorder_mut().emit(|| EventKind::Fig4 {
                        edge: 11,
                        frame: frame.index() as u64,
                        tier: tier.index() as u8,
                    });
                }
            }
        }
    }

    /// [`Self::shrink_active_one`] over shards in order: the first shard
    /// with a non-empty active list is shrunk. Returns whether any page
    /// was processed.
    fn shrink_active_any(
        &mut self,
        mem: &mut MemorySystem,
        tier: TierId,
        kind: PageKind,
        force: bool,
    ) -> bool {
        for shard in 0..self.tiers[tier.index()].shard_count() {
            if self.shrink_active_one(mem, tier, shard, kind, force) {
                return true;
            }
        }
        false
    }

    /// [`Self::shrink_inactive_one`] over shards in order: the first shard
    /// whose inactive list yields a page decides the result.
    fn shrink_inactive_any(
        &mut self,
        mem: &mut MemorySystem,
        tier: TierId,
        kind: PageKind,
        force: bool,
    ) -> ShrinkResult {
        for shard in 0..self.tiers[tier.index()].shard_count() {
            let r = self.shrink_inactive_one(mem, tier, shard, kind, force);
            if r != ShrinkResult::Empty {
                return r;
            }
        }
        ShrinkResult::Empty
    }

    /// One `shrink_active_list()` step: the oldest active page either
    /// steps the ladder (if referenced) or is deactivated to the inactive
    /// list (transition 9). Returns whether a page was processed.
    fn shrink_active_one(
        &mut self,
        mem: &mut MemorySystem,
        tier: TierId,
        shard: usize,
        kind: PageKind,
        force: bool,
    ) -> bool {
        let Some(frame) = self.tiers[tier.index()]
            .shard_mut(shard)
            .set_mut(kind)
            .active
            .pop_front()
        else {
            return false;
        };
        // Re-insert so ladder moves operate on a member page.
        self.tiers[tier.index()]
            .shard_mut(shard)
            .set_mut(kind)
            .active
            .push_back(frame);
        if mem.harvest_referenced(frame) {
            let steps = self.access_steps(mem, frame);
            self.apply_access(mem, frame, steps);
        } else if self.state_of(frame) == Some(PageState::ActiveRef) {
            // The software referenced state (set by a scan that already
            // consumed the PTE bit) protects the page from gentle
            // (promotion-driven) reclaim: only the periodic scan may
            // decay it, otherwise a reclaim pass running between two
            // harvests would strip the hot core out of the tier. Forced
            // reclaim (real memory shortage) must make progress, so it
            // decays the page one step per rotation like the kernel's
            // direct-reclaim second chance.
            if force {
                // fig4: 8 — forced decay, one step per rotation.
                self.transition(mem, frame, PageState::ActiveUnref);
                mem.recorder_mut().emit(|| EventKind::Fig4 {
                    edge: 8,
                    frame: frame.index() as u64,
                    tier: tier.index() as u8,
                });
            }
        } else {
            // fig4: 9 — deactivation to the inactive list.
            saturating_bump(&mut self.stats.deactivations);
            self.transition(mem, frame, PageState::InactiveUnref);
            mem.recorder_mut().emit(|| EventKind::Fig4 {
                edge: 9,
                frame: frame.index() as u64,
                tier: tier.index() as u8,
            });
        }
        true
    }

    /// One `shrink_inactive_list()` step on the cold end of the inactive
    /// list.
    fn shrink_inactive_one(
        &mut self,
        mem: &mut MemorySystem,
        tier: TierId,
        shard: usize,
        kind: PageKind,
        force: bool,
    ) -> ShrinkResult {
        let Some(frame) = self.tiers[tier.index()]
            .shard_mut(shard)
            .set_mut(kind)
            .inactive
            .pop_front()
        else {
            return ShrinkResult::Empty;
        };
        if mem.harvest_referenced(frame) {
            // Referenced: rotate and step the ladder (transitions 1/6).
            self.tiers[tier.index()]
                .shard_mut(shard)
                .set_mut(kind)
                .inactive
                .push_back(frame);
            let steps = self.access_steps(mem, frame);
            self.apply_access(mem, frame, steps);
            return ShrinkResult::Rotated;
        }
        if self.state_of(frame) == Some(PageState::InactiveRef) {
            // A scan saw this page referenced recently: rotate, do not
            // demote. Gentle reclaim never decays it (that is the
            // periodic scan's job); forced reclaim decays one step per
            // rotation so it cannot livelock when everything was just
            // touched.
            self.tiers[tier.index()]
                .shard_mut(shard)
                .set_mut(kind)
                .inactive
                .push_back(frame);
            if force {
                // fig4: 1 — forced decay of the software referenced state.
                self.transition(mem, frame, PageState::InactiveUnref);
                mem.recorder_mut().emit(|| EventKind::Fig4 {
                    edge: 1,
                    frame: frame.index() as u64,
                    tier: tier.index() as u8,
                });
            }
            return ShrinkResult::Rotated;
        }
        if !mem.frame(frame).migratable() {
            self.tiers[tier.index()]
                .shard_mut(shard)
                .set_mut(kind)
                .inactive
                .push_back(frame);
            return ShrinkResult::Rotated;
        }
        self.demote_or_evict(mem, frame, tier, kind)
    }

    /// Migrates a cold page down one tier, or evicts it from the lowest
    /// tier. The page is currently detached from all lists.
    fn demote_or_evict(
        &mut self,
        mem: &mut MemorySystem,
        frame: FrameId,
        tier: TierId,
        kind: PageKind,
    ) -> ShrinkResult {
        let tier_count = self.tiers.len();
        match tier.lower(tier_count) {
            Some(lower) => {
                // Transactional mode keeps a shadow copy of cleanly
                // promoted pages downstairs; if this page's shadow is
                // still valid the demotion is a zero-copy mapping flip.
                if self.cfg.migration_mode == MigrationMode::Transactional {
                    if let Some(copy) = mem.try_shadow_demote(frame, lower) {
                        // fig4: 3 — same landing as a copied demotion.
                        self.retrack_after_migration(mem, frame, copy, PageState::InactiveUnref);
                        saturating_bump(&mut self.stats.demotions);
                        mem.recorder_mut().emit(|| EventKind::Fig4 {
                            edge: 3,
                            frame: copy.index() as u64,
                            tier: lower.index() as u8,
                        });
                        return ShrinkResult::Demoted;
                    }
                }
                match mem.migrate(frame, lower) {
                    Ok(new_frame) => {
                        // fig4: 3 — demotion lands cold on the lower tier.
                        self.retrack_after_migration(
                            mem,
                            frame,
                            new_frame,
                            PageState::InactiveUnref,
                        );
                        saturating_bump(&mut self.stats.demotions);
                        mem.recorder_mut().emit(|| EventKind::Fig4 {
                            edge: 3,
                            frame: new_frame.index() as u64,
                            tier: lower.index() as u8,
                        });
                        ShrinkResult::Demoted
                    }
                    Err(MemError::TierFull(_)) => {
                        // The lower tier is full too: reclaim it (which on
                        // the lowest tier evicts to storage), then retry.
                        if !self.pressure_guard[lower.index()] {
                            self.run_pressure(mem, lower, true);
                        }
                        match mem.migrate(frame, lower) {
                            Ok(new_frame) => {
                                self.retrack_after_migration(
                                    mem,
                                    frame,
                                    new_frame,
                                    PageState::InactiveUnref,
                                );
                                saturating_bump(&mut self.stats.demotions);
                                mem.recorder_mut().emit(|| EventKind::Fig4 {
                                    edge: 3,
                                    frame: new_frame.index() as u64,
                                    tier: lower.index() as u8,
                                });
                                ShrinkResult::Demoted
                            }
                            Err(_) => {
                                self.shard_lists_mut(tier, frame)
                                    .set_mut(kind)
                                    .inactive
                                    .push_back(frame);
                                ShrinkResult::Rotated
                            }
                        }
                    }
                    Err(_) => {
                        self.shard_lists_mut(tier, frame)
                            .set_mut(kind)
                            .inactive
                            .push_back(frame);
                        ShrinkResult::Rotated
                    }
                }
            }
            None => match mem.evict(frame) {
                Ok(()) => {
                    // fig4: 4 — eviction ends tracking like an unmap does.
                    self.states[frame.index()] = None;
                    self.region_map.untrack(frame);
                    saturating_bump(&mut self.stats.evictions);
                    mem.recorder_mut().emit(|| EventKind::Fig4 {
                        edge: 4,
                        frame: frame.index() as u64,
                        tier: tier.index() as u8,
                    });
                    ShrinkResult::Evicted
                }
                Err(_) => {
                    self.shard_lists_mut(tier, frame)
                        .set_mut(kind)
                        .inactive
                        .push_back(frame);
                    ShrinkResult::Rotated
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MultiClockConfig;
    use mc_mem::{AccessKind, MemConfig, Nanos, TieringPolicy, VPage};

    fn fill_dram(mem: &mut MemorySystem, mc: &mut MultiClock, start_v: u64) -> Vec<(u64, FrameId)> {
        let mut mapped = Vec::new();
        let mut v = start_v;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            mc.on_page_mapped(mem, f);
            mapped.push((v, f));
            v += 1;
        }
        mapped
    }

    #[test]
    fn pressure_demotes_cold_pages_to_pm() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let pages = fill_dram(&mut mem, &mut mc, 0);
        assert!(mem.tier_under_pressure(TierId::TOP));
        let out = mc.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        assert!(out.demoted > 0, "cold pages must demote under pressure");
        assert!(
            mem.tier_balanced(TierId::TOP),
            "reclaim restores high watermark"
        );
        // Demoted pages are mapped in PM now, tracked as inactive there.
        let demoted = pages
            .iter()
            .filter(|(v, _)| {
                let nf = mem.translate(VPage::new(*v)).unwrap();
                mem.frame(nf).tier() == TierId::new(1)
            })
            .count();
        assert_eq!(demoted as u64, out.demoted);
        assert_eq!(mc.stats().demotions, out.demoted);
    }

    #[test]
    fn referenced_pages_survive_pressure_longer_than_cold_ones() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let pages = fill_dram(&mut mem, &mut mc, 0);
        // Touch the second half of the pages (sets PTE reference bits).
        let half = pages.len() / 2;
        for (v, _) in &pages[half..] {
            mem.access(VPage::new(*v), AccessKind::Read).unwrap();
        }
        mc.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        let survivors: Vec<bool> = pages
            .iter()
            .map(|(v, _)| {
                let nf = mem.translate(VPage::new(*v)).unwrap();
                mem.frame(nf).tier() == TierId::TOP
            })
            .collect();
        let cold_survivors = survivors[..half].iter().filter(|s| **s).count();
        let hot_survivors = survivors[half..].iter().filter(|s| **s).count();
        assert!(
            hot_survivors > cold_survivors,
            "referenced pages ({hot_survivors}) must outlive cold ones ({cold_survivors})"
        );
    }

    #[test]
    fn lowest_tier_pressure_evicts_to_storage() {
        // Tiny machine: fill both tiers, then demand reclaim on PM.
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 32));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page(PageKind::Anon) {
            mem.map(VPage::new(v), f).unwrap();
            mc.on_page_mapped(&mut mem, f);
            v += 1;
        }
        assert!(mem.tier_under_pressure(TierId::new(1)));
        let before = mem.stats().evictions;
        mc.on_pressure(&mut mem, TierId::new(1), Nanos::ZERO);
        assert!(mem.stats().evictions > before, "lowest tier evicts");
        assert!(mc.stats().evictions > 0);
        assert!(mem.tier_balanced(TierId::new(1)));
    }

    #[test]
    fn demotion_cascade_dram_to_pm_to_storage() {
        // Both tiers full: DRAM pressure demotes into PM, which must first
        // evict its own cold pages.
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 32));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page(PageKind::Anon) {
            mem.map(VPage::new(v), f).unwrap();
            mc.on_page_mapped(&mut mem, f);
            v += 1;
        }
        let out = mc.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        assert!(out.demoted > 0, "DRAM pages demoted despite full PM");
        assert!(mem.stats().evictions > 0, "PM made room by evicting");
        assert!(mem.tier_balanced(TierId::TOP));
    }

    #[test]
    fn unevictable_pages_are_never_demoted() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let pages = fill_dram(&mut mem, &mut mc, 0);
        // Pin the first five pages.
        let pinned: Vec<FrameId> = pages.iter().take(5).map(|(_, f)| *f).collect();
        for f in &pinned {
            mc.mlock(&mut mem, *f);
        }
        mc.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        for (i, f) in pinned.iter().enumerate() {
            assert_eq!(
                mem.frame(*f).tier(),
                TierId::TOP,
                "pinned page {i} must stay in DRAM"
            );
            assert_eq!(mc.state_of(*f), Some(PageState::Unevictable));
        }
    }

    #[test]
    fn pressure_is_reentrancy_safe_and_terminates() {
        // A pathological machine where everything is tiny.
        let mut mem = MemorySystem::new(MemConfig::two_tier(8, 8));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page(PageKind::Anon) {
            mem.map(VPage::new(v), f).unwrap();
            mc.on_page_mapped(&mut mem, f);
            v += 1;
        }
        // Must not hang or overflow the stack.
        for _ in 0..3 {
            mc.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
            mc.on_pressure(&mut mem, TierId::new(1), Nanos::ZERO);
        }
    }

    #[test]
    fn active_inactive_ratio_is_restored_under_pressure() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let pages = fill_dram(&mut mem, &mut mc, 0);
        // Make everything active (two supervised accesses each).
        for (_, f) in &pages {
            mc.on_supervised_access(&mut mem, *f, AccessKind::Read);
            mc.on_supervised_access(&mut mem, *f, AccessKind::Read);
        }
        let lists = mc.tier_lists(TierId::TOP).shard(0);
        assert!(lists.anon.active.len() > lists.anon.inactive.len());
        mc.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        let lists = mc.tier_lists(TierId::TOP).shard(0);
        let tier_pages = mem.topology().tier(TierId::TOP).pages();
        assert!(
            !inactive_is_low(
                lists.anon.active.len(),
                lists.anon.inactive.len(),
                tier_pages
            ),
            "ratio restored: active={} inactive={}",
            lists.anon.active.len(),
            lists.anon.inactive.len()
        );
        assert!(mc.stats().deactivations > 0);
    }

    #[test]
    fn three_tier_demotion_goes_one_tier_down() {
        let mut mem = MemorySystem::new(MemConfig::three_tier(16, 64, 256));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        // Fill HBM.
        let mut v = 0u64;
        let mut hbm_pages = Vec::new();
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            mc.on_page_mapped(&mut mem, f);
            hbm_pages.push(v);
            v += 1;
        }
        let out = mc.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        assert!(out.demoted > 0);
        // Demoted pages land in DRAM (tier 1), not PM (tier 2).
        for pv in &hbm_pages {
            let nf = mem.translate(VPage::new(*pv)).unwrap();
            assert_ne!(mem.frame(nf).tier(), TierId::new(2));
        }
    }
}
