//! MULTI-CLOCK tunables.

use mc_fault::RetryPolicy;
use mc_mem::{MigrationMode, Nanos};
use mc_obs::PerfHooks;
use serde::{Deserialize, Serialize};

/// Configuration for [`crate::MultiClock`].
///
/// Defaults follow the paper's prototype: a one-second `kpromoted` period
/// (chosen by the §V-E sensitivity study) and a scan batch of 1024 pages
/// ("we set the number of page scan to 1024").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiClockConfig {
    /// `kpromoted` wake-up period.
    pub scan_interval: Nanos,
    /// Pages examined per list per tick.
    pub scan_batch: usize,
    /// Maximum pages examined by one pressure (reclaim) invocation.
    pub reclaim_batch: usize,
    /// §VII extension: "include the dirtiness information for memory
    /// pages in a weighted formula to compute the importance of a page".
    /// `1.0` reproduces the paper (reads and writes indistinguishable);
    /// above `1.0`, *dirty* promotion candidates get priority for scarce
    /// promotion slots, biasing placement towards pages that would pay
    /// the lower tier's expensive stores.
    pub write_weight: f64,
    /// §VII extension: adapt the scan interval to workload behaviour
    /// (halve it while promotions are plentiful, back off when idle).
    pub adaptive_interval: bool,
    /// Lower bound for the adaptive interval.
    pub min_interval: Nanos,
    /// Upper bound for the adaptive interval.
    pub max_interval: Nanos,
    /// Scanner shards per NUMA node (HM-Keeper-style scan sharding). Each
    /// tier's lists are split into `nodes_in_tier × scan_shards`
    /// independent shards, each scanned with its own full budget every
    /// tick — modelling one `kpromoted` daemon per node as in the paper.
    /// `1` (the default) reproduces the original single-scanner layout
    /// bit-for-bit on single-node tiers.
    pub scan_shards: usize,
    /// Maximum pages handed to one batched migration call when draining a
    /// promote list (Nomad-style `migrate_pages` batching). `1` (the
    /// default) migrates page-at-a-time, bit-identical to the unbatched
    /// path; larger values amortize the per-call setup cost.
    pub migrate_batch_size: usize,
    /// Worker threads for the scan phase. Each tick, the per-shard scan
    /// jobs (every shard of every tier) are split into `scan_threads`
    /// contiguous chunks and run on scoped OS threads — the paper's
    /// concurrent per-node `kpromoted` daemons. Shard results are merged
    /// in fixed shard order on the coordinating thread, so any value
    /// produces output bit-identical to `1` (the sequential default); see
    /// [`crate::executor`].
    pub scan_threads: usize,
    /// How the promote path reacts to transient migration failures
    /// (destination full, page transiently locked). The default,
    /// [`RetryPolicy::immediate`], allows a single attempt — exactly the
    /// pre-fault-layer behaviour; [`RetryPolicy::backoff`] retries with
    /// exponential backoff before degrading to the active-list fallback.
    pub retry: RetryPolicy,
    /// How promotions move pages: [`MigrationMode::Sync`] (the default)
    /// copies and remaps inside the kpromoted run, stalling the
    /// application for the whole unmap/copy/remap sequence —
    /// bit-identical to the engine before transactional migration
    /// existed. [`MigrationMode::Transactional`] opens a Nomad-style
    /// transaction instead: the page stays mapped at its source while
    /// the copy proceeds in the background, a dirty write during the
    /// copy window aborts the transaction into the retry/backoff path,
    /// and a clean copy commits with one cheap atomic remap at the next
    /// tick.
    pub migration_mode: MigrationMode,
    /// Whether committed transactional promotions retain their source
    /// frame as a non-exclusive *shadow copy*, so demoting a page that
    /// stayed clean upstairs is a zero-copy mapping flip back to the
    /// retained frame. Only consulted in `Transactional` mode; shadows
    /// are invalidated on the first dirty write and released under
    /// allocation pressure.
    pub shadow_pages: bool,
    /// Optional host-time profiling hooks ([`mc_obs::perf`]). `None` (the
    /// default) makes every phase boundary a no-op; `Some` opens a
    /// wall-clock span around each scan/merge/promote-drain/pressure/
    /// migrate-batch phase. Hooks only *observe* host time — no clock
    /// value flows back into the engine — so any setting produces results
    /// bit-identical to `None`.
    pub perf: Option<PerfHooks>,
    /// HM-Keeper-style adaptive region profiling ([`crate::region`]).
    /// Region boundaries only steer where the scanner samples reference
    /// bits and how often it wakes — any knob values are bit-identical
    /// to any others; see the module docs for the contract.
    pub regions: RegionKnobs,
}

/// Knobs for the adaptive region map ([`crate::region::RegionMap`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionKnobs {
    /// Frames per granule — the minimum region size and split alignment.
    /// `1` gives page-granular regions (the tick-equivalent extreme);
    /// the default of 512 frames (2 MiB of 4 KiB pages) keeps the
    /// per-granule arrays negligible even on terabyte topologies.
    pub granule: usize,
    /// Maximum region size in granules — the initial layout carves the
    /// frame space into regions of this size, and merges never exceed
    /// it. With the defaults (512 × 2048 = 1 Mi frames) a 1 TiB machine
    /// starts at 256 regions.
    pub max_granules: usize,
    /// Window heat at which a region splits in half (per rebalance).
    pub split_heat: u64,
    /// Window heat below which two neighbours may merge.
    pub merge_heat: u64,
    /// §VII-style extension: let the scanner reschedule itself from
    /// observed region churn (tracked-set mutations) in addition to
    /// promotion/demotion activity. Off by default — the scan interval
    /// then behaves exactly as before the region map existed.
    pub churn_interval: bool,
}

impl Default for RegionKnobs {
    fn default() -> Self {
        RegionKnobs {
            granule: 512,
            max_granules: 2048,
            split_heat: 1024,
            merge_heat: 64,
            churn_interval: false,
        }
    }
}

impl RegionKnobs {
    /// Validates invariants; called by [`crate::region::RegionMap::new`]
    /// (and transitively by [`MultiClockConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics if any bound is nonsensical (zero granule or cap, merge
    /// threshold at or above the split threshold).
    pub fn validate(&self) {
        assert!(self.granule > 0, "region granule must be positive");
        assert!(self.max_granules > 0, "region size cap must be positive");
        assert!(
            self.merge_heat < self.split_heat,
            "region merge threshold must sit below the split threshold"
        );
    }
}

impl Default for MultiClockConfig {
    fn default() -> Self {
        MultiClockConfig {
            scan_interval: Nanos::from_secs(1),
            scan_batch: 1024,
            reclaim_batch: 4096,
            write_weight: 1.0,
            adaptive_interval: false,
            min_interval: Nanos::from_millis(100),
            max_interval: Nanos::from_secs(60),
            scan_shards: 1,
            migrate_batch_size: 1,
            scan_threads: 1,
            retry: RetryPolicy::immediate(),
            migration_mode: MigrationMode::Sync,
            shadow_pages: true,
            perf: None,
            regions: RegionKnobs::default(),
        }
    }
}

impl MultiClockConfig {
    /// The paper's defaults with a different scan interval (the Fig. 10
    /// sensitivity sweep).
    pub fn with_interval(interval: Nanos) -> Self {
        MultiClockConfig {
            scan_interval: interval,
            ..Self::default()
        }
    }

    /// Validates invariants; called by [`crate::MultiClock::new`].
    ///
    /// # Panics
    ///
    /// Panics if any bound is nonsensical (zero interval/batch, inverted
    /// adaptive bounds, non-positive write weight).
    pub fn validate(&self) {
        assert!(
            self.scan_interval > Nanos::ZERO,
            "scan interval must be positive"
        );
        assert!(self.scan_batch > 0, "scan batch must be positive");
        assert!(self.reclaim_batch > 0, "reclaim batch must be positive");
        assert!(self.write_weight >= 1.0, "write weight must be >= 1");
        assert!(
            self.min_interval <= self.max_interval,
            "adaptive interval bounds inverted"
        );
        assert!(self.scan_shards > 0, "scan shards must be positive");
        assert!(
            self.migrate_batch_size > 0,
            "migrate batch size must be positive"
        );
        assert!(self.scan_threads > 0, "scan threads must be positive");
        assert!(
            self.retry.is_valid(),
            "retry policy must allow at least one attempt with cap >= base"
        );
        self.regions.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MultiClockConfig::default();
        assert_eq!(c.scan_interval, Nanos::from_secs(1));
        assert_eq!(c.scan_batch, 1024);
        assert!(!c.adaptive_interval);
        assert_eq!(c.write_weight, 1.0);
        c.validate();
    }

    #[test]
    fn with_interval_overrides_only_interval() {
        let c = MultiClockConfig::with_interval(Nanos::from_millis(250));
        assert_eq!(c.scan_interval, Nanos::from_millis(250));
        assert_eq!(c.scan_batch, MultiClockConfig::default().scan_batch);
    }

    #[test]
    #[should_panic(expected = "scan batch")]
    fn zero_batch_rejected() {
        let c = MultiClockConfig {
            scan_batch: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn defaults_are_unsharded_and_unbatched() {
        let c = MultiClockConfig::default();
        assert_eq!(c.scan_shards, 1);
        assert_eq!(c.migrate_batch_size, 1);
        assert_eq!(c.scan_threads, 1, "sequential scan is the baseline");
        assert_eq!(
            c.migration_mode,
            MigrationMode::Sync,
            "synchronous migration is the baseline"
        );
        assert!(c.shadow_pages, "shadows are on once transactions are");
    }

    #[test]
    #[should_panic(expected = "scan threads")]
    fn zero_scan_threads_rejected() {
        let c = MultiClockConfig {
            scan_threads: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "scan shards")]
    fn zero_shards_rejected() {
        let c = MultiClockConfig {
            scan_shards: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "migrate batch")]
    fn zero_migrate_batch_rejected() {
        let c = MultiClockConfig {
            migrate_batch_size: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "write weight")]
    fn sub_one_write_weight_rejected() {
        let c = MultiClockConfig {
            write_weight: 0.5,
            ..Default::default()
        };
        c.validate();
    }
}
