//! MULTI-CLOCK internal counters, the analogue of the paper's
//! `/proc/vmstat` extensions (mm/vmstat.c rows in Table II).

use serde::{Deserialize, Serialize};

/// Counters maintained by [`crate::MultiClock`].
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiClockStats {
    /// `kpromoted` wake-ups.
    pub ticks: u64,
    /// Pages examined by scans (all lists).
    pub pages_scanned: u64,
    /// Inactive pages moved to an active list (transition 6).
    pub activations: u64,
    /// Active pages moved back to an inactive list (transition 9).
    pub deactivations: u64,
    /// Pages that entered a promote list (transition 10).
    pub promote_enqueues: u64,
    /// Promote-list pages aged back to active (transition 11).
    pub promote_ages: u64,
    /// Referenced states decayed by an unreferenced scan (the downward
    /// direction of transitions 1 and 7/8).
    pub ladder_decays: u64,
    /// Pages migrated to a higher tier (transition 13).
    pub promotions: u64,
    /// Promotions that could not proceed (locked page or no room even
    /// after reclaim) — the page went to the active list instead.
    pub promote_fallbacks: u64,
    /// Transient promotion failures requeued at the promote-list tail for
    /// a later, backed-off attempt.
    pub promote_retries: u64,
    /// Promotion episodes whose retry budget ran out; the page degraded
    /// gracefully to the active list (counted in `promote_fallbacks` too).
    pub promote_gave_ups: u64,
    /// Pages migrated to a lower tier (transition 3).
    pub demotions: u64,
    /// Pages evicted from the lowest tier (writeback/swap path).
    pub evictions: u64,
    /// Pressure invocations.
    pub pressure_runs: u64,
    /// Migration transactions opened (mirrors the substrate counter;
    /// non-zero only in [`mc_mem::MigrationMode::Transactional`]).
    pub txn_begins: u64,
    /// Migration transactions aborted (dirty write in the copy window,
    /// injected commit fault, or the source page disappearing).
    pub txn_aborts: u64,
    /// Migration transactions committed via atomic remap.
    pub txn_commits: u64,
    /// Demotions satisfied by flipping the mapping back to a retained
    /// shadow copy (zero-copy fast path).
    pub shadow_hits: u64,
    /// Shadow copies discarded before use (dirty write, page movement,
    /// or allocation pressure reclaiming the retained frame).
    pub shadow_invalidations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = MultiClockStats::default();
        assert_eq!(s.ticks + s.pages_scanned + s.promotions + s.demotions, 0);
    }
}
