//! The [`MultiClock`] policy: tracking structure, the Fig. 4 transition
//! engine, and the [`TieringPolicy`] wiring. The periodic scan lives in
//! [`crate::scan`]; the pressure/demotion path lives in
//! [`crate::reclaim`].

use crate::config::MultiClockConfig;
use crate::lists::{TierLists, TierShards};
use crate::region::{RegionMap, RegionStats};
use crate::state::PageState;
use crate::stats::MultiClockStats;
use mc_mem::{
    AccessKind, FrameId, MemorySystem, Nanos, PageFlags, PolicyTraits, TickOutcome, TierId,
    TieringPolicy, Topology,
};
use mc_obs::{saturating_bump, EventKind};

/// The MULTI-CLOCK dynamic tiering policy.
///
/// Keeps one [`TierShards`] per tier (per-node list shards, each a full
/// [`TierLists`]), a per-frame [`PageState`] table, and implements the
/// paper's page state machine: supervised accesses step the ladder
/// immediately (`mark_page_accessed()`), unsupervised accesses are
/// observed via harvested PTE reference bits during `kpromoted` scans, and
/// the promote lists of lower tiers are drained upwards — in batches —
/// every tick. Each frame is statically assigned to one shard of its tier
/// (by NUMA node, split further by `scan_shards`), mirroring the paper's
/// one-`kpromoted`-per-node design.
#[derive(Debug)]
pub struct MultiClock {
    pub(crate) cfg: MultiClockConfig,
    pub(crate) tiers: Vec<TierShards>,
    /// Shard index (within the owning tier's [`TierShards`]) of each
    /// frame. Static for the machine's lifetime: a frame that migrates
    /// lands on the shard its *new* frame number maps to.
    pub(crate) shard_table: Vec<u16>,
    pub(crate) states: Vec<Option<PageState>>,
    pub(crate) stats: MultiClockStats,
    /// Current scan interval (equals `cfg.scan_interval` unless the
    /// adaptive-interval extension is enabled).
    pub(crate) current_interval: Nanos,
    /// Consecutive ticks without any promotion (adaptive back-off input).
    pub(crate) idle_ticks: u32,
    /// Re-entrancy guard for the pressure path, one slot per tier.
    pub(crate) pressure_guard: Vec<bool>,
    /// Pages detached from their list mid-step (drained promote
    /// candidates awaiting migration). Invariant validation is suspended
    /// while this is non-zero: tracked-but-listless is legal in flight.
    pub(crate) in_flight: usize,
    /// Per-frame retry bookkeeping for the promote path: `Some` only
    /// while a Promote-state page has failed at least one migration
    /// attempt and is waiting (requeued at the promote-list tail) for its
    /// backoff to elapse.
    pub(crate) retry_state: Vec<Option<RetryState>>,
    /// Source frames of open migration transactions
    /// ([`mc_mem::MigrationMode::Transactional`] only). These pages stay
    /// tracked in `Promote` state but sit on **no** list across the tick
    /// boundary — the copy window spans the inter-tick application run —
    /// and are settled (committed or aborted) at the start of the next
    /// kpromoted run. Unlike `in_flight`, this detachment persists
    /// across quiescent points, so the invariant checker exempts these
    /// frames explicitly instead of being suspended.
    pub(crate) txn_pending: Vec<FrameId>,
    /// The adaptive region partition over the frame space: which frame
    /// ranges the scan snapshots ([`RegionMap::scan_ranges`]) and the
    /// churn signal the churn-interval extension reschedules on. Mirrors
    /// the tracked set exactly (every `states` Some/None flip updates
    /// it), which is what keeps the sparse snapshot lossless.
    pub(crate) region_map: RegionMap,
}

/// Retry bookkeeping for one page's current promotion episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RetryState {
    /// Failed attempts so far (1-based after the first failure).
    pub(crate) attempts: u32,
    /// Tick ordinal at which the next attempt may run.
    pub(crate) eligible_tick: u64,
}

impl MultiClock {
    /// Creates a MULTI-CLOCK instance for the given machine topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MultiClockConfig::validate`]).
    pub fn new(cfg: MultiClockConfig, topology: &Topology) -> Self {
        cfg.validate();
        let current_interval = cfg.scan_interval;
        // One shard group per NUMA node (the paper's per-node kpromoted),
        // each node split further into `scan_shards` stripes. Frames are
        // striped across a node's shards by frame number, so the table is
        // static and a lookup is one index.
        let spn = cfg.scan_shards;
        let mut shard_table = vec![0u16; topology.total_pages()];
        let mut tiers = Vec::with_capacity(topology.tier_count());
        for t in 0..topology.tier_count() {
            let tier = TierId::new(t as u8);
            let mut node_ord = 0usize;
            for node in topology.nodes().iter().filter(|n| n.tier() == tier) {
                let base = node.first_frame().index();
                for f in node.frames() {
                    shard_table[f.index()] = (node_ord * spn + (f.index() - base) % spn) as u16;
                }
                node_ord += 1;
            }
            tiers.push(TierShards::new(node_ord.max(1) * spn));
        }
        let region_map = RegionMap::new(topology.total_pages() as u64, cfg.regions.clone());
        MultiClock {
            cfg,
            tiers,
            shard_table,
            states: vec![None; topology.total_pages()],
            stats: MultiClockStats::default(),
            current_interval,
            idle_ticks: 0,
            pressure_guard: vec![false; topology.tier_count()],
            in_flight: 0,
            retry_state: vec![None; topology.total_pages()],
            txn_pending: Vec::new(),
            region_map,
        }
    }

    /// Adaptation counters of the region map (region count, splits,
    /// merges, populated snapshot extent). Deliberately not part of
    /// [`TieringPolicy::counters`]: the per-tick obs CSV layout is
    /// pinned by the scheduler differential tests.
    pub fn region_stats(&self) -> RegionStats {
        self.region_map.stats()
    }

    /// Carves a frame range in or out of the CLOCK scan: `tracked == true`
    /// hands the range to an external sampled/sketch tracker (HybridTier
    /// style) and the scanner skips it; `false` returns it. The caller
    /// guarantees no CLOCK-tracked page lives in an externally tracked
    /// range — under that contract the setting changes scan *cost* only,
    /// never observed reference bits.
    pub fn set_externally_tracked(&mut self, range: mc_mem::FrameRange, tracked: bool) {
        if tracked {
            self.region_map.mark_external(range);
        } else {
            self.region_map.clear_external(range);
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiClockConfig {
        &self.cfg
    }

    /// Internal counters.
    pub fn stats(&self) -> &MultiClockStats {
        &self.stats
    }

    /// The tracked state of a frame, if it is tracked.
    pub fn state_of(&self, frame: FrameId) -> Option<PageState> {
        self.states[frame.index()]
    }

    /// Pages detached mid-migration right now. Zero at every quiescent
    /// point — a non-zero value between ticks means a migration path
    /// leaked a page (the chaos tests assert this never happens).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The sharded list structure of one tier (read-only; used by tests
    /// and the invariant checker).
    pub fn tier_lists(&self, tier: TierId) -> &TierShards {
        &self.tiers[tier.index()]
    }

    /// Source frames of migration transactions opened last tick and not
    /// yet settled (empty in `Sync` mode and at pre-tick quiescent
    /// points of a fresh policy).
    pub fn txn_pending(&self) -> &[FrameId] {
        &self.txn_pending
    }

    /// The shard (within its tier's [`TierShards`]) a frame belongs to.
    pub(crate) fn shard_of(&self, frame: FrameId) -> usize {
        self.shard_table[frame.index()] as usize
    }

    /// The mutable shard lists a frame belongs to on the given tier.
    pub(crate) fn shard_lists_mut(&mut self, tier: TierId, frame: FrameId) -> &mut TierLists {
        let s = self.shard_table[frame.index()] as usize;
        self.tiers[tier.index()].shard_mut(s)
    }

    /// Pins a page: moves it to the unevictable list; it will never be
    /// scanned or migrated until [`Self::munlock`].
    pub fn mlock(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        if self.states[frame.index()].is_none() {
            return;
        }
        // A page mid-copy-window is on no list; pinning it now would
        // corrupt the settle step. The lock lands after the transaction
        // resolves (commit retracks, abort requeues — either way the
        // page is listed again and a later mlock succeeds).
        if self.txn_pending.contains(&frame) {
            return;
        }
        let tier = mem.frame(frame).tier();
        self.tiers[tier.index()].remove(frame);
        self.shard_lists_mut(tier, frame)
            .unevictable
            .push_back(frame);
        self.states[frame.index()] = Some(PageState::Unevictable);
        self.retry_state[frame.index()] = None;
        self.sync_flags(mem, frame, PageState::Unevictable);
    }

    /// Unpins a page: it returns to the inactive list as a cold page.
    pub fn munlock(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        if self.states[frame.index()] != Some(PageState::Unevictable) {
            return;
        }
        let tier = mem.frame(frame).tier();
        let kind = mem.frame(frame).kind();
        let lists = self.shard_lists_mut(tier, frame);
        lists.unevictable.remove(frame);
        lists.set_mut(kind).inactive.push_back(frame);
        self.states[frame.index()] = Some(PageState::InactiveUnref);
        self.sync_flags(mem, frame, PageState::InactiveUnref);
    }

    /// Mirrors a [`PageState`] into the frame's page flags, keeping the
    /// `struct page` view consistent with the list view (Table II's
    /// page-flags.h changes).
    pub(crate) fn sync_flags(&self, mem: &mut MemorySystem, frame: FrameId, state: PageState) {
        let flags = mem.frame_flags_mut(frame);
        flags.insert(PageFlags::LRU);
        flags.set(PageFlags::ACTIVE, state.is_active());
        flags.set(PageFlags::PROMOTE, state == PageState::Promote);
        flags.set(PageFlags::REFERENCED, state.is_referenced());
        flags.set(PageFlags::UNEVICTABLE, state == PageState::Unevictable);
    }

    /// Starts tracking a freshly mapped page: Fig. 4 transition (5), the
    /// page enters `inactive-unreferenced`.
    pub(crate) fn track(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        debug_assert!(
            self.states[frame.index()].is_none(),
            "{frame} is already tracked"
        );
        let tier = mem.frame(frame).tier();
        let kind = mem.frame(frame).kind();
        // fig4: 5 — a new mapping enters at the bottom of the ladder.
        self.shard_lists_mut(tier, frame)
            .set_mut(kind)
            .inactive
            .push_back(frame);
        self.states[frame.index()] = Some(PageState::InactiveUnref);
        self.region_map.track(frame);
        self.sync_flags(mem, frame, PageState::InactiveUnref);
        mem.recorder_mut().emit(|| EventKind::Fig4 {
            edge: 5,
            frame: frame.index() as u64,
            tier: tier.index() as u8,
        });
    }

    /// Stops tracking a page (it is being unmapped/freed): Fig. 4
    /// transition (4).
    pub(crate) fn untrack(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        self.retry_state[frame.index()] = None;
        // Unmapping mid-copy-window: the substrate already aborted the
        // transaction eagerly; drop our settle bookkeeping to match.
        self.txn_pending.retain(|f| *f != frame);
        if self.states[frame.index()].take().is_some() {
            self.region_map.untrack(frame);
            let tier = mem.frame(frame).tier();
            // fig4: 4 — tracking ends; the page leaves every list.
            self.tiers[tier.index()].remove(frame);
            mem.frame_flags_mut(frame).remove(
                PageFlags::LRU
                    | PageFlags::ACTIVE
                    | PageFlags::PROMOTE
                    | PageFlags::REFERENCED
                    | PageFlags::UNEVICTABLE,
            );
            mem.recorder_mut().emit(|| EventKind::Fig4 {
                edge: 4,
                frame: frame.index() as u64,
                tier: tier.index() as u8,
            });
        }
    }

    /// Applies `steps` observed accesses to a page: the ladder of Fig. 4
    /// transitions (2), (6), (7)/(8), (10), (12), moving the page between
    /// lists as its state changes.
    ///
    /// A page that is not on any list (mid-scan, already popped) is simply
    /// pushed into the list its new state demands; callers that pop must
    /// re-insert the page first if they want rotation semantics.
    pub(crate) fn apply_access(&mut self, mem: &mut MemorySystem, frame: FrameId, steps: u32) {
        let Some(mut st) = self.states[frame.index()] else {
            return;
        };
        if st == PageState::Unevictable {
            return;
        }
        // Supervised accesses heat the page's region (the harvested-bit
        // channel heats it from the scan merge).
        self.region_map.record_heat(frame, u64::from(steps));
        let tier = mem.frame(frame).tier();
        let kind = mem.frame(frame).kind();
        // fig4: 2, 6, 7, 10, 12 — each observed access climbs one edge.
        for _ in 0..steps {
            let new = st.on_access();
            let edge = Self::access_edge(st);
            if new == st {
                // The only self-edge of the ladder is (12): an observation
                // absorbed by the promote list. Record it — it is the
                // signal that a candidate stayed hot while queued.
                if st == PageState::Promote {
                    mem.recorder_mut().emit(|| EventKind::Fig4 {
                        edge,
                        frame: frame.index() as u64,
                        tier: tier.index() as u8,
                    });
                }
                break;
            }
            if new.list() != st.list() {
                let set = self.shard_lists_mut(tier, frame).set_mut(kind);
                set.list_mut(st.list()).remove(frame);
                set.list_mut(new.list()).push_back(frame);
                match new {
                    PageState::ActiveUnref => saturating_bump(&mut self.stats.activations), // fig4: 6
                    PageState::Promote => saturating_bump(&mut self.stats.promote_enqueues), // fig4: 10
                    // Accesses never move a page into the remaining
                    // states across a list boundary: (2) and (12) stay
                    // inside their list and ActiveRef is reached only by
                    // the list-internal edge (7).
                    PageState::InactiveUnref
                    | PageState::InactiveRef
                    | PageState::ActiveRef
                    | PageState::Unevictable => {}
                }
            }
            mem.recorder_mut().emit(|| EventKind::Fig4 {
                edge,
                frame: frame.index() as u64,
                tier: tier.index() as u8,
            });
            st = new;
        }
        self.states[frame.index()] = Some(st);
        self.sync_flags(mem, frame, st);
    }

    /// The Fig. 4 edge an observed access fires from each ladder state
    /// (0 for [`PageState::Unevictable`], which absorbs accesses before
    /// the ladder is consulted).
    pub(crate) fn access_edge(st: PageState) -> u8 {
        match st {
            PageState::InactiveUnref => 2,
            PageState::InactiveRef => 6,
            PageState::ActiveUnref => 7,
            PageState::ActiveRef => 10,
            PageState::Promote => 12,
            PageState::Unevictable => 0,
        }
    }

    /// How many ladder steps one observed access of this frame is worth.
    /// Always one: the §VII write-weight extension influences *placement
    /// priority* (see the promote phase), not the frequency bar — raising
    /// climb speed for dirty pages would just relax selectivity.
    pub(crate) fn access_steps(&self, _mem: &MemorySystem, _frame: FrameId) -> u32 {
        1
    }

    /// Moves a tracked page out of its current list and into the list a
    /// new state demands, updating the state table and flags. Used by the
    /// scan and reclaim paths for downward transitions.
    pub(crate) fn transition(
        &mut self,
        mem: &mut MemorySystem,
        frame: FrameId,
        new_state: PageState,
    ) {
        let Some(st) = self.states[frame.index()] else {
            return;
        };
        let tier = mem.frame(frame).tier();
        let kind = mem.frame(frame).kind();
        let set = self.shard_lists_mut(tier, frame).set_mut(kind);
        set.list_mut(st.list()).remove(frame);
        set.list_mut(new_state.list()).push_back(frame);
        self.states[frame.index()] = Some(new_state);
        if new_state != PageState::Promote {
            // Leaving the promote list ends the promotion episode.
            self.retry_state[frame.index()] = None;
        }
        self.sync_flags(mem, frame, new_state);
    }

    /// Carries tracking across a migration: the old frame is forgotten and
    /// the new frame enters `landing_state` on its tier's matching list.
    pub(crate) fn retrack_after_migration(
        &mut self,
        mem: &mut MemorySystem,
        old_frame: FrameId,
        new_frame: FrameId,
        landing_state: PageState,
    ) {
        if self.states[old_frame.index()].is_some() {
            self.region_map.untrack(old_frame);
        }
        self.states[old_frame.index()] = None;
        self.retry_state[old_frame.index()] = None;
        self.retry_state[new_frame.index()] = None;
        // The old frame is already detached by the caller; defensively
        // remove in case it was not.
        for t in &mut self.tiers {
            t.remove(old_frame);
        }
        let tier = mem.frame(new_frame).tier();
        let kind = mem.frame(new_frame).kind();
        self.shard_lists_mut(tier, new_frame)
            .set_mut(kind)
            .list_mut(landing_state.list())
            .push_back(new_frame);
        if self.states[new_frame.index()].is_none() {
            self.region_map.track(new_frame);
        }
        self.states[new_frame.index()] = Some(landing_state);
        self.sync_flags(mem, new_frame, landing_state);
    }
}

impl TieringPolicy for MultiClock {
    fn name(&self) -> &'static str {
        "multi-clock"
    }

    fn traits(&self) -> PolicyTraits {
        PolicyTraits {
            name: "MULTI-CLOCK",
            page_access_tracking: "Reference Bit",
            selection_promotion: "Recency+Frequency",
            selection_demotion: "Recency",
            numa_aware: true,
            space_overhead: false,
            generality: "All",
            key_insight: "Low overhead Recency/Frequency",
        }
    }

    fn on_page_mapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        self.track(mem, frame);
    }

    fn on_page_unmapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        self.untrack(mem, frame);
    }

    fn on_supervised_access(&mut self, mem: &mut MemorySystem, frame: FrameId, _kind: AccessKind) {
        // mark_page_accessed(): supervised accesses step the ladder
        // immediately, before the data access is even served (§III-A.1).
        self.apply_access(mem, frame, 1);
    }

    fn tick(&mut self, mem: &mut MemorySystem, now: Nanos) -> TickOutcome {
        self.kpromoted_run(mem, now)
    }

    fn on_pressure(&mut self, mem: &mut MemorySystem, tier: TierId, _now: Nanos) -> TickOutcome {
        self.run_pressure(mem, tier, true)
    }

    fn tick_interval(&self) -> Option<Nanos> {
        Some(self.current_interval)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("mc_ticks", self.stats.ticks),
            ("mc_pages_scanned", self.stats.pages_scanned),
            ("mc_activations", self.stats.activations),
            ("mc_deactivations", self.stats.deactivations),
            ("mc_promote_enqueues", self.stats.promote_enqueues),
            ("mc_promote_ages", self.stats.promote_ages),
            ("mc_ladder_decays", self.stats.ladder_decays),
            ("mc_promotions", self.stats.promotions),
            ("mc_promote_fallbacks", self.stats.promote_fallbacks),
            ("mc_promote_retries", self.stats.promote_retries),
            ("mc_promote_gave_ups", self.stats.promote_gave_ups),
            ("mc_demotions", self.stats.demotions),
            ("mc_evictions", self.stats.evictions),
            ("mc_pressure_runs", self.stats.pressure_runs),
            ("mc_txn_begins", self.stats.txn_begins),
            ("mc_txn_aborts", self.stats.txn_aborts),
            ("mc_txn_commits", self.stats.txn_commits),
            ("mc_shadow_hits", self.stats.shadow_hits),
            ("mc_shadow_invalidations", self.stats.shadow_invalidations),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_mem::{MemConfig, PageKind, VPage};

    fn setup() -> (MemorySystem, MultiClock) {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        (mem, mc)
    }

    fn map_one(mem: &mut MemorySystem, mc: &mut MultiClock, v: u64) -> FrameId {
        let f = mem.alloc_page(PageKind::Anon).unwrap();
        mem.map(VPage::new(v), f).unwrap();
        mc.on_page_mapped(mem, f);
        f
    }

    #[test]
    fn new_pages_enter_inactive_unreferenced() {
        let (mut mem, mut mc) = setup();
        let f = map_one(&mut mem, &mut mc, 1);
        assert_eq!(mc.state_of(f), Some(PageState::InactiveUnref));
        assert!(mc
            .tier_lists(TierId::TOP)
            .shard(0)
            .anon
            .inactive
            .contains(f));
        assert!(mem.frame(f).flags().contains(PageFlags::LRU));
        assert!(!mem.frame(f).flags().contains(PageFlags::ACTIVE));
    }

    #[test]
    fn supervised_accesses_climb_ladder_to_promote() {
        let (mut mem, mut mc) = setup();
        let f = map_one(&mut mem, &mut mc, 1);
        let states = [
            PageState::InactiveRef,
            PageState::ActiveUnref,
            PageState::ActiveRef,
            PageState::Promote,
            PageState::Promote,
        ];
        for expected in states {
            mc.on_supervised_access(&mut mem, f, AccessKind::Read);
            assert_eq!(mc.state_of(f), Some(expected));
        }
        let lists = mc.tier_lists(TierId::TOP);
        assert!(lists.shard(0).anon.promote.contains(f));
        assert!(mem.frame(f).flags().contains(PageFlags::PROMOTE));
        assert_eq!(mc.stats().activations, 1);
        assert_eq!(mc.stats().promote_enqueues, 1);
    }

    #[test]
    fn untrack_clears_lists_and_flags() {
        let (mut mem, mut mc) = setup();
        let f = map_one(&mut mem, &mut mc, 1);
        mc.on_supervised_access(&mut mem, f, AccessKind::Read);
        mc.on_page_unmapped(&mut mem, f);
        assert_eq!(mc.state_of(f), None);
        assert!(!mc.tier_lists(TierId::TOP).contains(f));
        assert!(!mem.frame(f).flags().contains(PageFlags::LRU));
    }

    #[test]
    fn mlock_munlock_cycle() {
        let (mut mem, mut mc) = setup();
        let f = map_one(&mut mem, &mut mc, 1);
        mc.mlock(&mut mem, f);
        assert_eq!(mc.state_of(f), Some(PageState::Unevictable));
        assert!(mc.tier_lists(TierId::TOP).shard(0).unevictable.contains(f));
        assert!(mem.frame(f).flags().contains(PageFlags::UNEVICTABLE));
        // Accesses do not move unevictable pages.
        mc.on_supervised_access(&mut mem, f, AccessKind::Read);
        assert_eq!(mc.state_of(f), Some(PageState::Unevictable));
        mc.munlock(&mut mem, f);
        assert_eq!(mc.state_of(f), Some(PageState::InactiveUnref));
        assert!(mc
            .tier_lists(TierId::TOP)
            .shard(0)
            .anon
            .inactive
            .contains(f));
    }

    #[test]
    fn write_weight_never_changes_climb_speed() {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let cfg = MultiClockConfig {
            write_weight: 3.0,
            ..Default::default()
        };
        let mut mc = MultiClock::new(cfg, mem.topology());
        let mut mem = mem;
        let f = mem.alloc_page(PageKind::Anon).unwrap();
        mem.map(VPage::new(1), f).unwrap();
        mc.on_page_mapped(&mut mem, f);
        mem.access(VPage::new(1), AccessKind::Write).unwrap(); // dirty
        mc.on_supervised_access(&mut mem, f, AccessKind::Write);
        assert_eq!(
            mc.state_of(f),
            Some(PageState::InactiveRef),
            "dirtiness weights placement priority, not the frequency bar"
        );
    }

    #[test]
    fn policy_reports_paper_traits() {
        let (_, mc) = setup();
        let t = mc.traits();
        assert_eq!(t.selection_promotion, "Recency+Frequency");
        assert_eq!(t.page_access_tracking, "Reference Bit");
        assert!(t.numa_aware);
        assert!(!t.space_overhead);
    }

    #[test]
    fn tick_interval_reports_configured_period() {
        let (_, mc) = setup();
        assert_eq!(mc.tick_interval(), Some(Nanos::from_secs(1)));
    }
}
