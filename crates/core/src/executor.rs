//! The scan executor: per-shard scan workers under real OS threads.
//!
//! The paper runs `kpromoted` as one daemon *per NUMA node*, all scanning
//! concurrently. This module puts threads under PR 4's `TierShards`: every
//! shard of every tier becomes one [`ScanJob`], the jobs are split into
//! `scan_threads` contiguous chunks, and each chunk runs on a scoped
//! worker (`std::thread::scope` — no detached state, no runtime).
//!
//! # Why the merged output is bit-identical to the sequential walk
//!
//! A worker owns its shard's lists (`&mut TierLists` — the borrows are
//! disjoint by construction) but **never touches shared state**. It reads:
//!
//! * an immutable snapshot of every PTE reference bit, taken by the
//!   coordinator before the scan ([`MemorySystem::referenced_snapshot`]).
//!   Reference bits are only set by workload accesses, never during a
//!   tick, so the snapshot equals what an in-place sequential harvest
//!   would read. Test-and-clear semantics are reproduced locally: the
//!   first harvest of a frame returns the snapshot bit, later harvests in
//!   the same tick return false, and consumed bits are reported in
//!   [`ShardScanOut::harvested`] for the coordinator to clear before the
//!   promote/pressure phases run;
//! * the start-of-tick page-state table, shadowed by a worker-local
//!   overlay of its own writes (a frame is scanned only by the shard that
//!   holds it, so no other worker's writes can be relevant).
//!
//! Everything a worker *would* have written goes into its
//! [`ShardScanOut`]: stat deltas, state changes in application order,
//! consumed reference bits, and buffered obs events
//! ([`mc_obs::EventBuffer`]). The coordinator merges the outputs in fixed
//! (tier, shard) order — exactly the sequential nested-loop order — so
//! replayed events get the same sequence numbers, Fig. 4 tallies and
//! timestamps, and the state table, flags and retry bookkeeping land in
//! the same final configuration. `scan_threads = 1` runs the very same
//! code inline; the differential tests in `crates/sim` assert
//! byte-identical artifacts for threads = 4 vs 1.
//!
//! [`MemorySystem::referenced_snapshot`]: mc_mem::MemorySystem::referenced_snapshot

use crate::config::MultiClockConfig;
use crate::lists::TierLists;
use crate::multi_clock::MultiClock;
use crate::state::PageState;
use mc_mem::{FrameId, MemorySystem, PageKind, RefSnapshot, TierId};
use mc_obs::{EventBuffer, EventKind};
use std::collections::{HashMap, HashSet};

/// Read-only context shared by every scan worker.
#[derive(Clone, Copy)]
pub(crate) struct ScanCtx<'a> {
    /// The policy configuration (scan budget).
    pub(crate) cfg: &'a MultiClockConfig,
    /// The memory system, read-only: frame kind lookups only.
    pub(crate) mem: &'a MemorySystem,
    /// Start-of-tick page states; workers shadow their own writes.
    pub(crate) states: &'a [Option<PageState>],
    /// Start-of-tick PTE reference bits, sampled over the region map's
    /// populated ranges only (frames outside read as unreferenced and
    /// are never asked about — they are not on any CLOCK list).
    pub(crate) referenced: &'a RefSnapshot,
    /// Whether the recorder is enabled (workers buffer events only then).
    pub(crate) record: bool,
}

/// One scan job: a shard's lists plus the tier they belong to.
pub(crate) struct ScanJob<'a> {
    /// The tier this shard belongs to (drives top-tier promote ageing
    /// and event payloads).
    pub(crate) tier: TierId,
    /// The shard's lists, exclusively borrowed for the scan phase.
    pub(crate) lists: &'a mut TierLists,
}

/// Everything one shard's scan produced, to be merged in shard order.
#[derive(Debug, Default)]
pub(crate) struct ShardScanOut {
    /// Pages examined (all lists, all kinds).
    pub(crate) pages_scanned: u64,
    /// Delta for `MultiClockStats::ladder_decays`.
    pub(crate) ladder_decays: u64,
    /// Delta for `MultiClockStats::promote_ages`.
    pub(crate) promote_ages: u64,
    /// Delta for `MultiClockStats::activations`.
    pub(crate) activations: u64,
    /// Delta for `MultiClockStats::promote_enqueues`.
    pub(crate) promote_enqueues: u64,
    /// State-table writes in application order (last write wins).
    pub(crate) state_changes: Vec<(FrameId, PageState)>,
    /// Frames whose set reference bit this scan consumed; the coordinator
    /// clears them (deferred test-and-clear) before the promote phase.
    pub(crate) harvested: Vec<FrameId>,
    /// Obs events in emission order, replayed at merge time.
    pub(crate) events: EventBuffer,
}

/// Runs every job, fanning contiguous chunks across up to `threads`
/// scoped workers, and returns the outputs in job order.
///
/// When perf hooks are configured, the whole fan-out (including the
/// sequential inline path) is wrapped in one [`mc_obs::Phase::Scan`]
/// span whose item count is the total pages scanned. The span only
/// observes the host clock; results are unaffected.
pub(crate) fn run_scan_jobs<'a>(
    jobs: Vec<ScanJob<'a>>,
    ctx: ScanCtx<'_>,
    threads: usize,
) -> Vec<ShardScanOut> {
    let mut span = ctx.cfg.perf.as_ref().map(|p| p.span(mc_obs::Phase::Scan));
    let outs = run_scan_jobs_inner(jobs, ctx, threads);
    if let Some(s) = span.as_mut() {
        s.add_items(outs.iter().map(|o| o.pages_scanned).sum());
    }
    outs
}

/// The unobserved fan-out body of [`run_scan_jobs`].
fn run_scan_jobs_inner<'a>(
    jobs: Vec<ScanJob<'a>>,
    ctx: ScanCtx<'_>,
    threads: usize,
) -> Vec<ShardScanOut> {
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads == 1 {
        // The sequential baseline runs the identical per-shard code
        // inline, in the same order the parallel path merges in.
        return jobs.into_iter().map(|job| scan_shard(job, ctx)).collect();
    }
    let chunk = jobs.len().div_ceil(threads);
    let mut outs: Vec<Vec<ShardScanOut>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut rest = jobs;
        while !rest.is_empty() {
            let tail = rest.split_off(chunk.min(rest.len()));
            let mine = std::mem::replace(&mut rest, tail);
            handles.push(scope.spawn(move || {
                mine.into_iter()
                    .map(|job| scan_shard(job, ctx))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            // lint: allow(panic) - a worker panic is a scan-phase bug; propagating it is the only honest outcome
            outs.push(handle.join().expect("scan worker panicked"));
        }
    });
    // Chunks are contiguous, so concatenation restores job order.
    outs.into_iter().flatten().collect()
}

/// Scans one shard to completion and returns its output.
fn scan_shard(job: ScanJob<'_>, ctx: ScanCtx<'_>) -> ShardScanOut {
    ShardScanner {
        tier: job.tier,
        lists: job.lists,
        ctx,
        overlay: HashMap::new(),
        cleared: HashSet::new(),
        out: ShardScanOut {
            events: EventBuffer::new(ctx.record),
            ..ShardScanOut::default()
        },
    }
    .run()
}

/// The per-shard scan state machine: the exact logic of the historical
/// sequential `scan_promote`/`scan_inactive`/`scan_active` walk, with
/// every shared-state write deferred into [`ShardScanOut`].
struct ShardScanner<'a, 'c> {
    tier: TierId,
    lists: &'a mut TierLists,
    ctx: ScanCtx<'c>,
    /// This worker's own state writes, shadowing `ctx.states`.
    overlay: HashMap<usize, PageState>,
    /// Frames whose reference bit was already test-and-cleared this tick.
    cleared: HashSet<usize>,
    out: ShardScanOut,
}

impl ShardScanner<'_, '_> {
    fn run(mut self) -> ShardScanOut {
        for kind in PageKind::ALL {
            // Ageing of unreferenced promote pages (transition 11) only
            // ever applies to the top tier: a lower tier's promote list is
            // drained by the promotion phase of the same run that
            // populated it (deferred retry candidates may sit across runs,
            // but those are waiting out a backoff, not ageing). It runs
            // before the other scans so pages entering the promote list
            // during this very scan are not aged before the promote phase
            // sees them.
            if self.tier.is_top() {
                let n = self.scan_promote(kind);
                self.out.pages_scanned += n;
            }
            let n = self.scan_inactive(kind);
            self.out.pages_scanned += n;
            let n = self.scan_active(kind);
            self.out.pages_scanned += n;
        }
        self.out
    }

    /// The tracked state of a frame as this worker sees it.
    fn state_of(&self, frame: FrameId) -> Option<PageState> {
        match self.overlay.get(&frame.index()) {
            Some(st) => Some(*st),
            None => self.ctx.states[frame.index()],
        }
    }

    /// Records a state write: shadows the global table for this worker's
    /// later reads and defers the real write to the merge.
    fn set_state(&mut self, frame: FrameId, st: PageState) {
        self.overlay.insert(frame.index(), st);
        self.out.state_changes.push((frame, st));
    }

    /// Worker-local test-and-clear of a frame's reference bit: the first
    /// harvest returns the snapshot value (and books the consumed bit for
    /// the coordinator), later harvests in the same tick see it cleared.
    fn harvest(&mut self, frame: FrameId) -> bool {
        if !self.cleared.insert(frame.index()) {
            return false;
        }
        if self.ctx.referenced.get(frame) {
            self.out.harvested.push(frame);
            true
        } else {
            false
        }
    }

    /// How many ladder steps one observed access of this frame is worth.
    /// Always one: the §VII write-weight extension influences *placement
    /// priority* (see the promote phase), not the frequency bar — raising
    /// climb speed for dirty pages would just relax selectivity.
    fn access_steps(&self, _frame: FrameId) -> u32 {
        1
    }

    /// Applies observed accesses to a page: the ladder of Fig. 4
    /// transitions (2), (6), (7)/(8), (10), (12), moving the page between
    /// this shard's lists as its state changes. The deferred mirror of
    /// `MultiClock::apply_access`.
    fn apply_access(&mut self, frame: FrameId) {
        let Some(mut st) = self.state_of(frame) else {
            return;
        };
        if st == PageState::Unevictable {
            return;
        }
        let tier = self.tier.index() as u8;
        let kind = self.ctx.mem.frame(frame).kind();
        // fig4: 2, 6, 7, 10, 12 — each observed access climbs one edge.
        for _ in 0..self.access_steps(frame) {
            let new = st.on_access();
            let edge = MultiClock::access_edge(st);
            if new == st {
                // The only self-edge of the ladder is (12): an observation
                // absorbed by the promote list. Record it — it is the
                // signal that a candidate stayed hot while queued.
                if st == PageState::Promote {
                    self.out.events.record(|| EventKind::Fig4 {
                        edge,
                        frame: frame.index() as u64,
                        tier,
                    });
                }
                break;
            }
            if new.list() != st.list() {
                let set = self.lists.set_mut(kind);
                set.list_mut(st.list()).remove(frame);
                set.list_mut(new.list()).push_back(frame);
                match new {
                    // fig4: 6
                    PageState::ActiveUnref => {
                        self.out.activations = self.out.activations.saturating_add(1);
                    }
                    // fig4: 10
                    PageState::Promote => {
                        self.out.promote_enqueues = self.out.promote_enqueues.saturating_add(1);
                    }
                    // Accesses never move a page into the remaining
                    // states across a list boundary: (2) and (12) stay
                    // inside their list and ActiveRef is reached only by
                    // the list-internal edge (7).
                    PageState::InactiveUnref
                    | PageState::InactiveRef
                    | PageState::ActiveRef
                    | PageState::Unevictable => {}
                }
            }
            self.out.events.record(|| EventKind::Fig4 {
                edge,
                frame: frame.index() as u64,
                tier,
            });
            st = new;
        }
        self.set_state(frame, st);
    }

    /// Moves a page to the list a new state demands: the deferred mirror
    /// of `MultiClock::transition` (retry-episode bookkeeping is applied
    /// at merge time from the recorded state change).
    fn transition(&mut self, frame: FrameId, new_state: PageState) {
        let Some(st) = self.state_of(frame) else {
            return;
        };
        let kind = self.ctx.mem.frame(frame).kind();
        let set = self.lists.set_mut(kind);
        set.list_mut(st.list()).remove(frame);
        set.list_mut(new_state.list()).push_back(frame);
        self.set_state(frame, new_state);
    }

    /// Scans up to `scan_batch` pages of this shard's inactive list.
    /// Referenced pages step the ladder; unreferenced pages simply rotate.
    fn scan_inactive(&mut self, kind: PageKind) -> u64 {
        let budget = self
            .lists
            .set(kind)
            .inactive
            .len()
            .min(self.ctx.cfg.scan_batch);
        let tier = self.tier.index() as u8;
        let mut scanned = 0;
        for _ in 0..budget {
            let Some(frame) = self.lists.set_mut(kind).inactive.pop_front() else {
                break;
            };
            scanned += 1;
            // Rotate first so the ladder's list moves see a member page.
            self.lists.set_mut(kind).inactive.push_back(frame);
            if self.harvest(frame) {
                self.apply_access(frame);
            } else if self.state_of(frame) == Some(PageState::InactiveRef) {
                // CLOCK decay (fig4: 1, downward): a page not
                // referenced since the last scan loses its referenced
                // state, so only pages referenced in *several recent*
                // scans ever reach the promote list.
                self.out.ladder_decays = self.out.ladder_decays.saturating_add(1);
                self.transition(frame, PageState::InactiveUnref);
                self.out.events.record(|| EventKind::Fig4 {
                    edge: 1,
                    frame: frame.index() as u64,
                    tier,
                });
            }
        }
        if scanned > 0 {
            self.out.events.record(|| EventKind::ScanList {
                tier,
                list: "inactive",
                scanned: scanned as u32,
            });
        }
        scanned
    }

    /// Scans up to `scan_batch` pages of this shard's active list.
    fn scan_active(&mut self, kind: PageKind) -> u64 {
        let budget = self
            .lists
            .set(kind)
            .active
            .len()
            .min(self.ctx.cfg.scan_batch);
        let tier = self.tier.index() as u8;
        let mut scanned = 0;
        for _ in 0..budget {
            let Some(frame) = self.lists.set_mut(kind).active.pop_front() else {
                break;
            };
            scanned += 1;
            self.lists.set_mut(kind).active.push_back(frame);
            if self.harvest(frame) {
                self.apply_access(frame);
            } else if self.state_of(frame) == Some(PageState::ActiveRef) {
                // CLOCK decay on the active rung as well (fig4: 8).
                self.out.ladder_decays = self.out.ladder_decays.saturating_add(1);
                self.transition(frame, PageState::ActiveUnref);
                self.out.events.record(|| EventKind::Fig4 {
                    edge: 8,
                    frame: frame.index() as u64,
                    tier,
                });
            }
        }
        if scanned > 0 {
            self.out.events.record(|| EventKind::ScanList {
                tier,
                list: "active",
                scanned: scanned as u32,
            });
        }
        scanned
    }

    /// Scans this shard's promote list: referenced pages stay (transition
    /// 12), unreferenced pages age back to the active list (transition 11).
    fn scan_promote(&mut self, kind: PageKind) -> u64 {
        let budget = self
            .lists
            .set(kind)
            .promote
            .len()
            .min(self.ctx.cfg.scan_batch);
        let tier = self.tier.index() as u8;
        let mut scanned = 0;
        for _ in 0..budget {
            let Some(frame) = self.lists.set_mut(kind).promote.pop_front() else {
                break;
            };
            scanned += 1;
            self.lists.set_mut(kind).promote.push_back(frame);
            if !self.harvest(frame) {
                // fig4: 11 — unaccessed promote pages age back to active.
                self.out.promote_ages = self.out.promote_ages.saturating_add(1);
                self.transition(frame, PageState::ActiveUnref);
                self.out.events.record(|| EventKind::Fig4 {
                    edge: 11,
                    frame: frame.index() as u64,
                    tier,
                });
            }
        }
        if scanned > 0 {
            self.out.events.record(|| EventKind::ScanList {
                tier,
                list: "promote",
                scanned: scanned as u32,
            });
        }
        scanned
    }
}
