//! HM-Keeper-style adaptive regions: the frame space partitioned into
//! contiguous, variable-size regions whose boundaries adapt to observed
//! hotness (hot regions split, cold regions merge), so per-tick scan
//! bookkeeping — most importantly the reference-bit snapshot — scales
//! with the *working set* rather than the machine size.
//!
//! # Model
//!
//! The frame space `[0, total_frames)` is divided into fixed **granules**
//! of `granule` frames (the minimum region size). A **region** is a run
//! of consecutive granules; the region list is always a partition of the
//! granule space: sorted, disjoint, gap-free. Per-granule arrays hold the
//! exact tracked-page count and the heat accumulated in the current
//! observation window, and every region carries the sum over its
//! granules — so splits can compute both children's aggregates *exactly*
//! (heat is conserved; the region proptest pins this).
//!
//! # Adaptation
//!
//! [`RegionMap::rebalance`] runs once per scan tick:
//!
//! 1. every region whose window heat reached `split_heat` (and that
//!    spans ≥ 2 granules) splits at its middle granule — hot working
//!    sets get finer regions;
//! 2. adjacent regions that both stayed under `merge_heat` merge, up to
//!    `max_granules` per region — cold space coarsens back;
//! 3. the window heat resets (only regions with non-zero heat walk
//!    their granules), starting the next observation window.
//!
//! Region boundaries influence only *where the scanner looks*
//! ([`RegionMap::scan_ranges`] — the extents of populated regions) and
//! how often it wakes (`take_churn`, consumed by the churn-interval
//! extension). They never change which pages the scan observes or what
//! values it reads: every tracked page lives inside a populated region,
//! and frames outside are never on a CLOCK list. Any split/merge
//! threshold therefore produces bit-identical simulation results — the
//! tick-equivalence contract of DESIGN.md §17.

use crate::config::RegionKnobs;
use mc_mem::{FrameId, FrameRange};

/// One region: a run of `len_g` granules starting at granule `start_g`,
/// with exact aggregates over its granules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Region {
    start_g: u64,
    len_g: u64,
    /// Tracked pages inside the region (sum of per-granule counts).
    tracked: u64,
    /// Heat observed inside the region this window (sum over granules).
    heat: u64,
}

/// Lifetime counters for the adaptation machinery. Deliberately *not*
/// part of the policy's vmstat counters: those feed the per-tick obs CSV,
/// whose byte layout the differential tests pin across the scheduler
/// refactor. Exposed through `MultiClock::region_stats` instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Current number of regions.
    pub regions: usize,
    /// Regions split since construction.
    pub splits: u64,
    /// Region merges since construction.
    pub merges: u64,
    /// Tracked pages across all regions.
    pub tracked: u64,
    /// Frames covered by populated regions — the per-tick reference
    /// snapshot cost ([`RegionMap::scan_ranges`] extent).
    pub populated_frames: u64,
    /// Heat accumulated in the current observation window, summed over
    /// all regions (equals the sum of per-page contributions — the
    /// region proptest pins this).
    pub window_heat: u64,
}

/// The adaptive region partition over one machine's frame space.
#[derive(Debug, Clone)]
pub struct RegionMap {
    granule: u64,
    total_frames: u64,
    /// Tracked-page count per granule.
    tracked_per_granule: Vec<u32>,
    /// Window heat per granule.
    heat_per_granule: Vec<u64>,
    /// The partition: sorted, disjoint, gap-free over the granule space.
    regions: Vec<Region>,
    /// Granules whose pages are tracked by an external (sampled/sketch)
    /// tracker instead of the CLOCK scan — [`Self::scan_ranges`] skips
    /// them. Empty set → scan behaviour is bit-identical to a map without
    /// this feature.
    external_per_granule: Vec<bool>,
    /// Number of `true` entries in `external_per_granule`.
    external_granules: u64,
    knobs: RegionKnobs,
    /// Tracked-set mutations since the last [`Self::take_churn`].
    churn: u64,
    splits: u64,
    merges: u64,
}

impl RegionMap {
    /// Builds the initial partition: regions of `max_granules` granules
    /// (the coarsest layout — adaptation refines from here).
    pub fn new(total_frames: u64, knobs: RegionKnobs) -> Self {
        knobs.validate();
        let granule = knobs.granule as u64;
        let granule_count = total_frames.div_ceil(granule).max(1);
        let max_g = knobs.max_granules as u64;
        let mut regions = Vec::with_capacity(granule_count.div_ceil(max_g) as usize);
        let mut start_g = 0;
        while start_g < granule_count {
            let len_g = max_g.min(granule_count - start_g);
            regions.push(Region {
                start_g,
                len_g,
                tracked: 0,
                heat: 0,
            });
            start_g += len_g;
        }
        RegionMap {
            granule,
            total_frames,
            tracked_per_granule: vec![0; granule_count as usize],
            heat_per_granule: vec![0; granule_count as usize],
            regions,
            external_per_granule: vec![false; granule_count as usize],
            external_granules: 0,
            knobs,
            churn: 0,
            splits: 0,
            merges: 0,
        }
    }

    /// The granule a frame belongs to.
    fn granule_of(&self, frame: FrameId) -> u64 {
        frame.index() as u64 / self.granule
    }

    /// Index into `regions` of the region containing granule `g`.
    fn region_index_of(&self, g: u64) -> usize {
        match self.regions.binary_search_by(|r| r.start_g.cmp(&g)) {
            Ok(i) => i,
            // `g` is inside the predecessor (the partition is gap-free,
            // so index 0 starts at granule 0 and Err(0) cannot occur).
            Err(i) => i - 1,
        }
    }

    /// A page entered tracking inside `frame`'s granule.
    pub fn track(&mut self, frame: FrameId) {
        let g = self.granule_of(frame);
        // lint: allow(indexing) - g = frame/granule < ceil(total/granule), the array length
        self.tracked_per_granule[g as usize] += 1;
        let i = self.region_index_of(g);
        // lint: allow(indexing) - region_index_of returns an index into the gap-free partition
        self.regions[i].tracked += 1;
        self.churn = self.churn.saturating_add(1);
    }

    /// A page left tracking inside `frame`'s granule.
    pub fn untrack(&mut self, frame: FrameId) {
        let g = self.granule_of(frame);
        // lint: allow(indexing) - g = frame/granule < ceil(total/granule), the array length
        self.tracked_per_granule[g as usize] -= 1;
        let i = self.region_index_of(g);
        // lint: allow(indexing) - region_index_of returns an index into the gap-free partition
        self.regions[i].tracked -= 1;
        self.churn = self.churn.saturating_add(1);
    }

    /// Records observed accesses (harvested reference bits, supervised
    /// ladder steps) against `frame`'s granule for this window.
    pub fn record_heat(&mut self, frame: FrameId, amount: u64) {
        let g = self.granule_of(frame);
        // lint: allow(indexing) - g = frame/granule < ceil(total/granule), the array length
        self.heat_per_granule[g as usize] =
            // lint: allow(indexing) - same granule index as the line above
            self.heat_per_granule[g as usize].saturating_add(amount);
        let i = self.region_index_of(g);
        // lint: allow(indexing) - region_index_of returns an index into the gap-free partition
        self.regions[i].heat = self.regions[i].heat.saturating_add(amount);
    }

    /// Exact aggregates over a granule run, from the per-granule arrays.
    fn aggregate(&self, start_g: u64, len_g: u64) -> (u64, u64) {
        let s = start_g as usize;
        let e = (start_g + len_g) as usize;
        let tracked = self.tracked_per_granule[s..e]
            .iter()
            .map(|&t| u64::from(t))
            .sum();
        let heat = self.heat_per_granule[s..e].iter().sum();
        (tracked, heat)
    }

    /// One adaptation step: split hot regions, merge cold neighbours,
    /// reset the observation window. Cost is O(current regions) plus the
    /// granules of regions that were hot this window.
    pub fn rebalance(&mut self) {
        // Split pass: one halving per hot region per rebalance (the map
        // converges over successive ticks, like HM-Keeper's gradual
        // region refinement).
        let mut split = Vec::with_capacity(self.regions.len());
        for r in std::mem::take(&mut self.regions) {
            if r.heat >= self.knobs.split_heat && r.len_g >= 2 {
                let mid = r.len_g / 2;
                let (lt, lh) = self.aggregate(r.start_g, mid);
                split.push(Region {
                    start_g: r.start_g,
                    len_g: mid,
                    tracked: lt,
                    heat: lh,
                });
                // Heat and tracked counts are conserved across a split:
                // the right child takes exactly the remainder.
                split.push(Region {
                    start_g: r.start_g + mid,
                    len_g: r.len_g - mid,
                    tracked: r.tracked - lt,
                    heat: r.heat - lh,
                });
                self.splits += 1;
            } else {
                split.push(r);
            }
        }
        // Merge pass: greedily fold a cold region into a cold left
        // neighbour while the result stays within `max_granules`.
        let mut merged: Vec<Region> = Vec::with_capacity(split.len());
        for r in split {
            if let Some(last) = merged.last_mut() {
                if last.heat < self.knobs.merge_heat
                    && r.heat < self.knobs.merge_heat
                    && last.len_g + r.len_g <= self.knobs.max_granules as u64
                {
                    last.len_g += r.len_g;
                    last.tracked += r.tracked;
                    last.heat += r.heat;
                    self.merges += 1;
                    continue;
                }
            }
            merged.push(r);
        }
        self.regions = merged;
        // Window reset: only regions that saw heat walk their granules.
        for i in 0..self.regions.len() {
            // lint: allow(indexing) - i ranges over 0..regions.len()
            if self.regions[i].heat > 0 {
                // lint: allow(indexing) - i ranges over 0..regions.len()
                let s = self.regions[i].start_g as usize;
                // lint: allow(indexing) - i ranges over 0..regions.len(); the run indexes the granule array
                let e = s + self.regions[i].len_g as usize;
                self.heat_per_granule[s..e].fill(0);
                // lint: allow(indexing) - i ranges over 0..regions.len()
                self.regions[i].heat = 0;
            }
        }
    }

    /// Marks a frame range as externally tracked: a sampled/sketch tracker
    /// (e.g. HybridTier) owns those pages, so the CLOCK scan skips every
    /// granule the range touches. Callers must guarantee no CLOCK-tracked
    /// page lives in the marked granules — then skipping changes only scan
    /// *cost*, never observed values.
    pub fn mark_external(&mut self, range: FrameRange) {
        self.set_external(range, true);
    }

    /// Returns a previously marked range to CLOCK-scan coverage.
    pub fn clear_external(&mut self, range: FrameRange) {
        self.set_external(range, false);
    }

    fn set_external(&mut self, range: FrameRange, flag: bool) {
        if range.len == 0 {
            return;
        }
        let first_g = range.start / self.granule;
        let end = (range.start + range.len).min(self.total_frames.max(1));
        let last_g = end.saturating_sub(1) / self.granule;
        for g in first_g..=last_g {
            if let Some(e) = self.external_per_granule.get_mut(g as usize) {
                if *e != flag {
                    *e = flag;
                    if flag {
                        self.external_granules += 1;
                    } else {
                        self.external_granules -= 1;
                    }
                }
            }
        }
    }

    /// Number of granules currently carved out for external trackers.
    pub fn external_granules(&self) -> u64 {
        self.external_granules
    }

    /// The frame extents of populated regions (tracked > 0), adjacent
    /// extents coalesced — exactly what the scan must snapshot. Granules
    /// marked externally tracked are skipped; with none marked (the
    /// default) the result is bit-identical to the pre-hook computation.
    pub fn scan_ranges(&self) -> Vec<FrameRange> {
        let mut ranges: Vec<FrameRange> = Vec::new();
        if self.external_granules == 0 {
            for r in &self.regions {
                if r.tracked == 0 {
                    continue;
                }
                let start = r.start_g * self.granule;
                let len = (r.len_g * self.granule).min(self.total_frames - start);
                match ranges.last_mut() {
                    Some(prev) if prev.start + prev.len == start => prev.len += len,
                    _ => ranges.push(FrameRange::new(start, len)),
                }
            }
            return ranges;
        }
        // Externals present: walk populated regions granule-wise so the
        // skipped granules punch holes in the extents.
        for r in &self.regions {
            if r.tracked == 0 {
                continue;
            }
            for g in r.start_g..r.start_g + r.len_g {
                if self
                    .external_per_granule
                    .get(g as usize)
                    .is_some_and(|&e| e)
                {
                    continue;
                }
                let start = g * self.granule;
                if start >= self.total_frames {
                    break;
                }
                let len = self.granule.min(self.total_frames - start);
                match ranges.last_mut() {
                    Some(prev) if prev.start + prev.len == start => prev.len += len,
                    _ => ranges.push(FrameRange::new(start, len)),
                }
            }
        }
        ranges
    }

    /// Tracked-set mutations since the last call, resetting the counter.
    /// Feeds the churn-interval extension: a quiet map lets the scanner
    /// back off, a churning one snaps it back.
    pub fn take_churn(&mut self) -> u64 {
        std::mem::take(&mut self.churn)
    }

    /// Current adaptation counters.
    pub fn stats(&self) -> RegionStats {
        RegionStats {
            regions: self.regions.len(),
            splits: self.splits,
            merges: self.merges,
            tracked: self.regions.iter().map(|r| r.tracked).sum(),
            populated_frames: self.scan_ranges().iter().map(|r| r.len).sum(),
            window_heat: self.regions.iter().map(|r| r.heat).sum(),
        }
    }

    /// Structural self-check: the regions must partition the granule
    /// space and every aggregate must equal the sum over its granules.
    /// Returns the first inconsistency found. O(total granules) — test
    /// and invariant-checker use only.
    pub fn check(&self) -> Result<(), String> {
        let granule_count = self.total_frames.div_ceil(self.granule).max(1);
        let mut next_g = 0;
        for (i, r) in self.regions.iter().enumerate() {
            if r.start_g != next_g {
                return Err(format!(
                    "region {i} starts at granule {} but {next_g} expected",
                    r.start_g
                ));
            }
            if r.len_g == 0 {
                return Err(format!("region {i} is empty"));
            }
            if r.len_g > self.knobs.max_granules as u64 {
                return Err(format!(
                    "region {i} spans {} granules, above the {} cap",
                    r.len_g, self.knobs.max_granules
                ));
            }
            let (tracked, heat) = self.aggregate(r.start_g, r.len_g);
            if tracked != r.tracked {
                return Err(format!(
                    "region {i} says {} tracked but granules sum to {tracked}",
                    r.tracked
                ));
            }
            if heat != r.heat {
                return Err(format!(
                    "region {i} says heat {} but granules sum to {heat}",
                    r.heat
                ));
            }
            next_g += r.len_g;
        }
        if next_g != granule_count {
            return Err(format!(
                "regions cover {next_g} granules but the space has {granule_count}"
            ));
        }
        let ext = self.external_per_granule.iter().filter(|&&e| e).count() as u64;
        if ext != self.external_granules {
            return Err(format!(
                "external counter says {} but {ext} granules are flagged",
                self.external_granules
            ));
        }
        Ok(())
    }

    /// Whether `frame` lies inside a populated region — i.e. the scan's
    /// snapshot would sample it. Every tracked frame must satisfy this.
    pub fn covers_tracked(&self, frame: FrameId) -> bool {
        let g = self.granule_of(frame);
        // lint: allow(indexing) - region_index_of returns an index into the gap-free partition
        self.regions[self.region_index_of(g)].tracked > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs(granule: usize, max_granules: usize) -> RegionKnobs {
        RegionKnobs {
            granule,
            max_granules,
            ..RegionKnobs::default()
        }
    }

    #[test]
    fn initial_partition_covers_the_space_in_max_size_regions() {
        let map = RegionMap::new(10_000, knobs(16, 32));
        map.check().unwrap();
        // ceil(10000/16) = 625 granules in ceil(625/32) = 20 regions.
        assert_eq!(map.stats().regions, 20);
        assert_eq!(map.scan_ranges(), vec![], "nothing tracked yet");
    }

    #[test]
    fn track_untrack_keeps_aggregates_exact() {
        let mut map = RegionMap::new(1024, knobs(4, 8));
        for i in [0u32, 1, 5, 900] {
            map.track(FrameId::new(i));
        }
        map.check().unwrap();
        assert_eq!(map.stats().tracked, 4);
        map.untrack(FrameId::new(5));
        map.check().unwrap();
        assert_eq!(map.stats().tracked, 3);
        assert_eq!(map.take_churn(), 5);
        assert_eq!(map.take_churn(), 0);
    }

    #[test]
    fn scan_ranges_cover_only_populated_regions_and_coalesce() {
        let mut map = RegionMap::new(1024, knobs(4, 8));
        // Regions are 32 frames (8 granules × 4). Populate regions 0, 1
        // (adjacent → coalesced) and 20.
        map.track(FrameId::new(3));
        map.track(FrameId::new(40));
        map.track(FrameId::new(650));
        let ranges = map.scan_ranges();
        assert_eq!(
            ranges,
            vec![FrameRange::new(0, 64), FrameRange::new(640, 32)]
        );
        for f in [3u32, 40, 650] {
            assert!(map.covers_tracked(FrameId::new(f)));
        }
    }

    #[test]
    fn hot_regions_split_and_heat_is_conserved() {
        let mut knobs = knobs(4, 8);
        knobs.split_heat = 10;
        knobs.merge_heat = 0; // merges off: isolate the split behaviour
        let mut map = RegionMap::new(256, knobs);
        assert_eq!(map.stats().regions, 8); // 64 granules in 8-granule caps
        map.track(FrameId::new(2));
        for _ in 0..10 {
            map.record_heat(FrameId::new(2), 1);
        }
        map.rebalance();
        map.check().unwrap();
        let s = map.stats();
        assert_eq!(s.splits, 1);
        assert_eq!(s.regions, 9, "the hot region split in two, the rest stayed");
        // The tracked page sits in the left child; only its extent is
        // scanned now (4 granules × 4 frames).
        assert_eq!(map.scan_ranges(), vec![FrameRange::new(0, 16)]);
    }

    #[test]
    fn cold_regions_merge_back_to_the_cap() {
        let mut knobs = knobs(4, 8);
        knobs.split_heat = 4;
        knobs.merge_heat = 2;
        let mut map = RegionMap::new(256, knobs);
        map.track(FrameId::new(0));
        for _ in 0..4 {
            map.record_heat(FrameId::new(0), 1);
        }
        map.rebalance(); // splits the first region
        assert_eq!(map.stats().regions, 9);
        // No heat this window: everything cold, the split halves fold
        // back into one cap-size region.
        map.rebalance();
        map.check().unwrap();
        let s = map.stats();
        assert!(s.merges >= 1);
        assert_eq!(s.regions, 8, "back to the eight cap-size regions");
    }

    #[test]
    fn repeated_splits_converge_to_single_granule_regions() {
        let mut knobs = knobs(4, 64);
        knobs.split_heat = 1;
        knobs.merge_heat = 0; // merges off: let the splits accumulate
        let mut map = RegionMap::new(64, knobs);
        map.track(FrameId::new(9));
        for _ in 0..8 {
            map.record_heat(FrameId::new(9), 1);
            map.rebalance();
            map.check().unwrap();
        }
        // Granule 2 (frames 8..12) can never split further.
        let populated: Vec<_> = map.scan_ranges();
        assert_eq!(populated, vec![FrameRange::new(8, 4)]);
    }

    #[test]
    fn single_page_granule_supports_the_tick_equivalent_config() {
        let mut map = RegionMap::new(64, knobs(1, 64));
        map.track(FrameId::new(7));
        map.check().unwrap();
        assert_eq!(map.scan_ranges(), vec![FrameRange::new(0, 64)]);
    }

    #[test]
    fn stats_report_populated_extent() {
        let mut map = RegionMap::new(1024, knobs(4, 8));
        map.track(FrameId::new(100));
        assert_eq!(map.stats().populated_frames, 32);
    }

    #[test]
    fn external_ranges_are_skipped_by_the_scan() {
        let mut map = RegionMap::new(1024, knobs(4, 8));
        // Populate region 0 (frames 0..32) via a tracked page in its
        // first granule; the rest of the region holds no tracked pages.
        map.track(FrameId::new(3));
        assert_eq!(map.scan_ranges(), vec![FrameRange::new(0, 32)]);
        // Carve frames 16..32 (granules 4..8) out for an external tracker.
        map.mark_external(FrameRange::new(16, 16));
        map.check().unwrap();
        assert_eq!(map.external_granules(), 4);
        assert_eq!(map.scan_ranges(), vec![FrameRange::new(0, 16)]);
        // Clearing restores the exact pre-hook extents.
        map.clear_external(FrameRange::new(16, 16));
        map.check().unwrap();
        assert_eq!(map.external_granules(), 0);
        assert_eq!(map.scan_ranges(), vec![FrameRange::new(0, 32)]);
    }

    #[test]
    fn external_holes_split_coalesced_extents() {
        let mut map = RegionMap::new(1024, knobs(4, 8));
        map.track(FrameId::new(3));
        map.track(FrameId::new(40)); // adjacent regions 0 and 1 coalesce
        assert_eq!(map.scan_ranges(), vec![FrameRange::new(0, 64)]);
        map.mark_external(FrameRange::new(32, 4)); // one granule mid-extent
        assert_eq!(
            map.scan_ranges(),
            vec![FrameRange::new(0, 32), FrameRange::new(36, 28)]
        );
    }

    #[test]
    fn external_marking_is_idempotent_and_granule_rounded() {
        let mut map = RegionMap::new(1024, knobs(4, 8));
        // A partial-granule range claims every granule it touches.
        map.mark_external(FrameRange::new(5, 2));
        assert_eq!(map.external_granules(), 1);
        map.mark_external(FrameRange::new(4, 4)); // same granule again
        assert_eq!(map.external_granules(), 1);
        map.mark_external(FrameRange::new(0, 0)); // empty: no-op
        assert_eq!(map.external_granules(), 1);
        map.clear_external(FrameRange::new(4, 4));
        assert_eq!(map.external_granules(), 0);
        map.check().unwrap();
    }

    #[test]
    fn no_external_marks_means_identical_scan_ranges() {
        // The fast path must reproduce the legacy coalescing exactly,
        // including after a mark/clear round trip.
        let mut map = RegionMap::new(4096, knobs(4, 8));
        for f in [3u32, 40, 650, 1200, 1204] {
            map.track(FrameId::new(f));
        }
        let before = map.scan_ranges();
        map.mark_external(FrameRange::new(2048, 64));
        map.clear_external(FrameRange::new(2048, 64));
        assert_eq!(map.scan_ranges(), before);
    }
}
