//! Property tests for the per-node scanner shards: across random traces
//! on a dual-socket machine (two DRAM nodes + two PM nodes) and every
//! shards-per-node setting, a tracked page must always sit on *exactly
//! one* shard — never lost off every list, never double-listed across
//! shards — and the full invariant suite (including the per-shard
//! assignment invariant) must hold after every step. Batched promotion
//! is crossed in so mid-drain requeues are exercised too.

use mc_mem::{
    AccessKind, FrameId, MemConfig, MemorySystem, Nanos, PageKind, TierId, TieringPolicy, VPage,
};
use multi_clock::{MultiClock, MultiClockConfig};
use proptest::prelude::*;

/// One step of the random trace (mirrors `state_machine.rs`).
#[derive(Debug, Clone)]
enum Op {
    Map,
    Unmap(usize),
    Access { index: usize, write: bool },
    Tick,
    Pressure(usize),
    Mlock(usize),
    Munlock(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Map),
        Just(Op::Map),
        (0usize..4096).prop_map(Op::Unmap),
        (0usize..4096, any::<bool>()).prop_map(|(index, write)| Op::Access { index, write }),
        Just(Op::Tick),
        (0usize..2).prop_map(Op::Pressure),
        (0usize..4096).prop_map(Op::Mlock),
        (0usize..4096).prop_map(Op::Munlock),
    ]
}

/// The number of shards (across every tier) holding `frame`.
fn shards_holding(mem: &MemorySystem, mc: &MultiClock, frame: FrameId) -> usize {
    (0..mem.topology().tier_count())
        .map(|t| {
            mc.tier_lists(TierId::new(t as u8))
                .shards()
                .filter(|lists| lists.contains(frame))
                .count()
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_scanner_never_loses_or_double_lists_a_page(
        scan_shards in 1usize..=3,
        migrate_batch_size in 1usize..=4,
        ops in prop::collection::vec(op(), 1..120),
    ) {
        let mut mem = MemorySystem::new(MemConfig::dual_socket(12, 24));
        let cfg = MultiClockConfig {
            scan_shards,
            migrate_batch_size,
            ..Default::default()
        };
        let mut mc = MultiClock::new(cfg, mem.topology());
        let mut live: Vec<VPage> = Vec::new();
        let mut next_vp = 0u64;
        let mut ticks = 0u64;

        for op in ops {
            match &op {
                Op::Map => {
                    if let Ok(frame) = mem.alloc_page(PageKind::Anon) {
                        let vp = VPage::new(next_vp);
                        next_vp += 1;
                        mem.map(vp, frame).expect("fresh vpage maps");
                        mc.on_page_mapped(&mut mem, frame);
                        live.push(vp);
                    }
                }
                Op::Unmap(index) => {
                    if !live.is_empty() {
                        let vp = live.swap_remove(index % live.len());
                        let frame = mem.unmap(vp).expect("live page unmaps");
                        mc.on_page_unmapped(&mut mem, frame);
                        mem.free_page(frame).expect("unmapped page frees");
                    }
                }
                Op::Access { index, write } => {
                    if !live.is_empty() {
                        let vp = live[index % live.len()];
                        let kind = if *write { AccessKind::Write } else { AccessKind::Read };
                        mem.access(vp, kind).expect("live page is accessible");
                        let frame = mem.translate(vp).expect("live page translates");
                        mc.on_supervised_access(&mut mem, frame, kind);
                    }
                }
                Op::Tick => {
                    ticks += 1;
                    mc.tick(&mut mem, Nanos::from_secs(ticks));
                }
                Op::Pressure(t) => {
                    mc.on_pressure(&mut mem, TierId::new(*t as u8), Nanos::from_secs(ticks));
                }
                Op::Mlock(index) => {
                    if !live.is_empty() {
                        let vp = live[index % live.len()];
                        let frame = mem.translate(vp).expect("live page translates");
                        mc.mlock(&mut mem, frame);
                    }
                }
                Op::Munlock(index) => {
                    if !live.is_empty() {
                        let vp = live[index % live.len()];
                        let frame = mem.translate(vp).expect("live page translates");
                        mc.munlock(&mut mem, frame);
                    }
                }
            }

            let violations = mc.check_invariants(&mem);
            prop_assert!(
                violations.is_empty(),
                "invariants broken after {:?} (shards={}, batch={}): {:?}",
                op,
                scan_shards,
                migrate_batch_size,
                violations
            );
            prop_assert_eq!(mc.in_flight(), 0, "in-flight page leaked after {:?}", op);
            // Exactly-one-shard: the core sharding guarantee.
            for vp in &live {
                let frame = mem.translate(*vp).expect("live page translates");
                let n = shards_holding(&mem, &mc, frame);
                prop_assert_eq!(
                    n,
                    1,
                    "page {:?} (frame {:?}) is on {} shards after {:?}",
                    vp,
                    frame,
                    n,
                    op
                );
            }
        }
    }
}

#[test]
fn one_shard_per_node_matches_node_count() {
    // dual_socket: one DRAM tier with two nodes, one PM tier with two
    // nodes — at 1 shard per node each tier carries two shards; at 3 per
    // node, six.
    let mem = MemorySystem::new(MemConfig::dual_socket(12, 24));
    for (spn, want) in [(1usize, 2usize), (3, 6)] {
        let cfg = MultiClockConfig {
            scan_shards: spn,
            ..Default::default()
        };
        let mc = MultiClock::new(cfg, mem.topology());
        for t in 0..mem.topology().tier_count() {
            assert_eq!(
                mc.tier_lists(TierId::new(t as u8)).shard_count(),
                want,
                "tier {t} at {spn} shards/node"
            );
        }
    }
}
