//! Chaos property tests (the fault-injection counterpart of
//! `state_machine.rs`): random fault plans crossed with random access
//! traces must never corrupt the Fig. 4 structures, leak an in-flight
//! page, lose a mapped page, or map two virtual pages to one frame —
//! no matter which migrations and allocations the injector fails.

use mc_fault::{FaultInjector, FaultPlan, OfflineWindow, RetryPolicy};
use mc_mem::{
    AccessKind, FrameId, MemConfig, MemorySystem, MigrationMode, Nanos, PageKind, TierId,
    TieringPolicy, VPage,
};
use multi_clock::{MultiClock, MultiClockConfig};
use proptest::prelude::*;
use std::collections::HashSet;

/// One step of the random trace (mirrors `state_machine.rs`).
#[derive(Debug, Clone)]
enum Op {
    Map,
    Unmap(usize),
    Access { index: usize, write: bool },
    Tick,
    Pressure(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Map),
        Just(Op::Map),
        (0usize..4096).prop_map(Op::Unmap),
        (0usize..4096, any::<bool>()).prop_map(|(index, write)| Op::Access { index, write }),
        Just(Op::Tick),
        (0usize..2).prop_map(Op::Pressure),
    ]
}

/// A random fault plan: independent failure rates plus up to two tier-0
/// offline windows inside the trace's virtual-time span.
fn plan() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..0.5,
        0.0f64..0.3,
        0.0f64..0.3,
        prop::collection::vec((1u64..200, 1u64..60), 0..2),
    )
        .prop_map(|(migrate, lock, alloc, windows)| FaultPlan {
            migrate_fail_rate: migrate,
            migrate_lock_rate: lock,
            alloc_fail_rate: alloc,
            offline: windows
                .into_iter()
                .map(|(from_s, len_s)| OfflineWindow {
                    tier: 0,
                    from_ns: Nanos::from_secs(from_s).as_nanos(),
                    until_ns: Nanos::from_secs(from_s + len_s).as_nanos(),
                })
                .collect(),
            stalls: Vec::new(),
        })
}

/// Every live virtual page still translates, to a distinct frame.
fn assert_conserved(mem: &MemorySystem, live: &[VPage]) {
    let mut frames: HashSet<FrameId> = HashSet::new();
    for vp in live {
        let frame = mem.translate(*vp);
        assert!(frame.is_some(), "live page {vp:?} lost its mapping");
        assert!(
            frames.insert(frame.unwrap()),
            "two virtual pages share frame {:?}",
            frame.unwrap()
        );
    }
}

/// The shared trace interpreter: drives one random trace against one
/// random fault plan in the given migration mode, checking the full
/// invariant set after every step and draining at the end. In
/// transactional mode the same injected failures land *inside the copy
/// window* (migrations fail at settle time, after the transaction
/// opened), so the abort -> retry -> give-up ladder is exercised under
/// exactly the fault plans the synchronous path faces.
fn run_chaos(seed: u64, fault_plan: FaultPlan, ops: Vec<Op>, mode: MigrationMode) {
    let mut mem = MemorySystem::new(MemConfig::two_tier(24, 48));
    mem.set_fault_injector(FaultInjector::new(fault_plan, seed));
    let cfg = MultiClockConfig {
        retry: RetryPolicy::backoff(),
        migration_mode: mode,
        ..Default::default()
    };
    let mut mc = MultiClock::new(cfg, mem.topology());
    let mut live: Vec<VPage> = Vec::new();
    let mut next_vp = 0u64;
    let mut ticks = 0u64;

    for op in ops {
        match &op {
            Op::Map => {
                // Allocation may fail by injection; the engine treats
                // that as a skipped fault, so the trace just moves on.
                if let Ok(frame) = mem.alloc_page(PageKind::Anon) {
                    let vp = VPage::new(next_vp);
                    next_vp += 1;
                    mem.map(vp, frame).expect("fresh vpage maps");
                    mc.on_page_mapped(&mut mem, frame);
                    live.push(vp);
                }
            }
            Op::Unmap(index) => {
                if !live.is_empty() {
                    let vp = live.swap_remove(index % live.len());
                    let frame = mem.unmap(vp).expect("live page unmaps");
                    mc.on_page_unmapped(&mut mem, frame);
                    mem.free_page(frame).expect("unmapped page frees");
                }
            }
            Op::Access { index, write } => {
                if !live.is_empty() {
                    let vp = live[index % live.len()];
                    let kind = if *write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    mem.access(vp, kind).expect("live page is accessible");
                    let frame = mem.translate(vp).expect("live page translates");
                    mc.on_supervised_access(&mut mem, frame, kind);
                }
            }
            Op::Tick => {
                ticks += 1;
                mc.tick(&mut mem, Nanos::from_secs(ticks));
            }
            Op::Pressure(t) => {
                mc.on_pressure(&mut mem, TierId::new(*t as u8), Nanos::from_secs(ticks));
            }
        }
        let violations = mc.check_invariants(&mem);
        prop_assert!(
            violations.is_empty(),
            "invariants broken after {:?}: {:?}",
            op,
            violations
        );
        prop_assert_eq!(mc.in_flight(), 0, "in-flight page leaked after {:?}", op);
        assert_conserved(&mem, &live);
    }

    // Drain: run well past every offline window (they end by t=260 s)
    // with the injector still rolling failures; paused promotion
    // episodes must resolve — promoted, retried or degraded — without
    // ever losing a page.
    for extra in 1..=40u64 {
        mc.tick(&mut mem, Nanos::from_secs(300 + extra));
        prop_assert_eq!(mc.in_flight(), 0);
    }
    prop_assert!(mc.check_invariants(&mem).is_empty());
    assert_conserved(&mem, &live);
    let s = mc.stats();
    prop_assert!(s.promote_gave_ups <= s.promote_fallbacks);
    if mode == MigrationMode::Transactional {
        // The transaction ledger must balance once the drain settled
        // every copy window.
        let ms = mem.stats();
        prop_assert!(mem.migration_txns().is_empty());
        prop_assert_eq!(ms.txn_begins, ms.txn_commits + ms.txn_aborts);
    } else {
        prop_assert_eq!(mem.stats().txn_begins, 0, "sync mode opened a txn");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_survive_arbitrary_fault_sequences(
        seed in any::<u64>(),
        fault_plan in plan(),
        ops in prop::collection::vec(op(), 1..140),
    ) {
        run_chaos(seed, fault_plan, ops, MigrationMode::Sync);
    }

    /// The same arbitrary fault plans with every promotion routed through
    /// a copy window: injected failures now fire at settle time — inside
    /// an open transaction — and must abort it into the retry/backoff
    /// path without breaking any invariant.
    #[test]
    fn invariants_survive_faults_inside_the_copy_window(
        seed in any::<u64>(),
        fault_plan in plan(),
        ops in prop::collection::vec(op(), 1..140),
    ) {
        run_chaos(seed, fault_plan, ops, MigrationMode::Transactional);
    }
}
