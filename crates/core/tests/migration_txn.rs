//! Property tests for transactional migration (the Nomad-style path):
//! random access traces crossed with random abort rates and the shadow
//! knob must never lose a page, double-map a frame, leak a transaction,
//! retain a shadow for a dirty page, or exceed the retry budget.
//!
//! The structural side (shadow entries only for clean mapped pages, dst
//! reservations unmapped, retry attempts below the policy's cap) is
//! invariant 8 of `MultiClock::check_invariants`, re-checked after every
//! step; the accounting side (every begun transaction commits, aborts,
//! or is still in its copy window) is asserted directly against
//! `MemStats`.

use mc_fault::{FaultInjector, FaultPlan, RetryPolicy};
use mc_mem::{
    AccessKind, FrameId, MemConfig, MemorySystem, MigrationMode, Nanos, PageFlags, PageKind,
    TierId, TieringPolicy, VPage,
};
use multi_clock::{MultiClock, MultiClockConfig};
use proptest::prelude::*;
use std::collections::HashSet;

/// One step of the random trace (mirrors `chaos.rs`).
#[derive(Debug, Clone)]
enum Op {
    Map,
    Unmap(usize),
    Access { index: usize, write: bool },
    Tick,
    Pressure(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Map),
        Just(Op::Map),
        (0usize..4096).prop_map(Op::Unmap),
        (0usize..4096, any::<bool>()).prop_map(|(index, write)| Op::Access { index, write }),
        // Ticks are weighted up versus chaos.rs: transactions only settle
        // at the next tick, so traces need plenty of tick boundaries for
        // copy windows to open *and* close.
        Just(Op::Tick),
        Just(Op::Tick),
        (0usize..2).prop_map(Op::Pressure),
    ]
}

/// Every live virtual page still translates, to a distinct frame.
fn assert_conserved(mem: &MemorySystem, live: &[VPage]) {
    let mut frames: HashSet<FrameId> = HashSet::new();
    for vp in live {
        let frame = mem.translate(*vp);
        assert!(frame.is_some(), "live page {vp:?} lost its mapping");
        assert!(
            frames.insert(frame.unwrap()),
            "two virtual pages share frame {:?}",
            frame.unwrap()
        );
    }
}

/// Begun transactions are conserved: committed, aborted, or still open.
fn assert_txn_accounted(mem: &MemorySystem) {
    let s = mem.stats();
    assert_eq!(
        s.txn_begins,
        s.txn_commits + s.txn_aborts + mem.migration_txns().len() as u64,
        "a migration transaction vanished without commit or abort"
    );
}

/// Shadow copies exist only for clean, still-mapped upper-tier pages.
/// (Also invariant 8; asserted directly so a violation names the frame.)
fn assert_shadows_clean(mem: &MemorySystem) {
    for (live, copy) in mem.shadow_pages().iter() {
        let fr = mem.frame(live);
        assert!(
            fr.vpage().is_some(),
            "shadow key {live:?} is not a mapped page"
        );
        assert!(
            !fr.flags().contains(PageFlags::DIRTY),
            "shadow retained for dirty page {live:?}"
        );
        assert!(
            mem.frame(copy).vpage().is_none(),
            "shadow copy {copy:?} is mapped"
        );
    }
}

fn run_trace(
    ops: Vec<Op>,
    shadow_pages: bool,
    fault_plan: Option<(FaultPlan, u64)>,
    retry: RetryPolicy,
) {
    let mut mem = MemorySystem::new(MemConfig::two_tier(24, 48));
    if let Some((plan, seed)) = fault_plan {
        mem.set_fault_injector(FaultInjector::new(plan, seed));
    }
    let cfg = MultiClockConfig {
        retry,
        migration_mode: MigrationMode::Transactional,
        shadow_pages,
        ..Default::default()
    };
    let mut mc = MultiClock::new(cfg, mem.topology());
    let mut live: Vec<VPage> = Vec::new();
    let mut next_vp = 0u64;
    let mut ticks = 0u64;

    for op in ops {
        match &op {
            Op::Map => {
                if let Ok(frame) = mem.alloc_page(PageKind::Anon) {
                    let vp = VPage::new(next_vp);
                    next_vp += 1;
                    mem.map(vp, frame).expect("fresh vpage maps");
                    mc.on_page_mapped(&mut mem, frame);
                    live.push(vp);
                }
            }
            Op::Unmap(index) => {
                if !live.is_empty() {
                    let vp = live.swap_remove(index % live.len());
                    let frame = mem.unmap(vp).expect("live page unmaps");
                    mc.on_page_unmapped(&mut mem, frame);
                    mem.free_page(frame).expect("unmapped page frees");
                }
            }
            Op::Access { index, write } => {
                if !live.is_empty() {
                    let vp = live[index % live.len()];
                    let kind = if *write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    mem.access(vp, kind).expect("live page is accessible");
                    let frame = mem.translate(vp).expect("live page translates");
                    mc.on_supervised_access(&mut mem, frame, kind);
                }
            }
            Op::Tick => {
                ticks += 1;
                mc.tick(&mut mem, Nanos::from_secs(ticks));
            }
            Op::Pressure(t) => {
                mc.on_pressure(&mut mem, TierId::new(*t as u8), Nanos::from_secs(ticks));
            }
        }
        let violations = mc.check_invariants(&mem);
        prop_assert!(
            violations.is_empty(),
            "invariants broken after {:?}: {:?}",
            op,
            violations
        );
        prop_assert_eq!(mc.in_flight(), 0, "in-flight page leaked after {:?}", op);
        assert_conserved(&mem, &live);
        assert_txn_accounted(&mem);
        assert_shadows_clean(&mem);
    }

    // Drain: keep ticking so every open copy window settles and every
    // backoff expires; afterwards no transaction may remain open.
    for extra in 1..=40u64 {
        mc.tick(&mut mem, Nanos::from_secs(300 + extra));
        prop_assert_eq!(mc.in_flight(), 0);
    }
    prop_assert!(mc.check_invariants(&mem).is_empty());
    assert_conserved(&mem, &live);
    assert_shadows_clean(&mem);
    prop_assert!(
        mem.migration_txns().is_empty(),
        "a transaction survived 40 drain ticks"
    );
    let s = mem.stats();
    prop_assert_eq!(s.txn_begins, s.txn_commits + s.txn_aborts);
    let p = mc.stats();
    prop_assert!(p.promote_gave_ups <= p.promote_fallbacks);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fault-free transactional runs: the only aborts are organic dirty
    /// writes during a copy window.
    #[test]
    fn clean_traces_conserve_pages_and_txns(
        shadow in any::<bool>(),
        ops in prop::collection::vec(op(), 1..140),
    ) {
        run_trace(ops, shadow, None, RetryPolicy::backoff());
    }

    /// Random abort rates: injected failures land at `resolve` time —
    /// inside the copy window — and must take the same abort/retry path
    /// as a dirty write.
    #[test]
    fn injected_aborts_conserve_pages_and_txns(
        seed in any::<u64>(),
        shadow in any::<bool>(),
        migrate_rate in 0.0f64..0.6,
        lock_rate in 0.0f64..0.4,
        ops in prop::collection::vec(op(), 1..140),
    ) {
        let plan = FaultPlan {
            migrate_fail_rate: migrate_rate,
            migrate_lock_rate: lock_rate,
            alloc_fail_rate: 0.0,
            offline: Vec::new(),
            stalls: Vec::new(),
        };
        run_trace(ops, shadow, Some((plan, seed)), RetryPolicy::backoff());
    }

    /// A single-attempt retry policy must give up cleanly (fallback to
    /// the active list) rather than loop or leak, and the retry-bound
    /// invariant (attempts < max) must hold after every step.
    #[test]
    fn immediate_retry_policy_bounds_attempts(
        seed in any::<u64>(),
        shadow in any::<bool>(),
        ops in prop::collection::vec(op(), 1..100),
    ) {
        let plan = FaultPlan {
            migrate_fail_rate: 0.3,
            migrate_lock_rate: 0.2,
            alloc_fail_rate: 0.0,
            offline: Vec::new(),
            stalls: Vec::new(),
        };
        run_trace(ops, shadow, Some((plan, seed)), RetryPolicy::immediate());
    }
}
