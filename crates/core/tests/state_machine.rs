//! Exhaustive exercise of the paper's Fig. 4 transitions (1)-(13) through
//! the public policy API — each numbered edge is driven end to end.
//!
//! The tail of the file checks the machine two more ways: the runtime
//! `PageState::on_access` ladder is compared edge-for-edge against the
//! canonical transition table that `mc-lint` enforces statically, and a
//! property test drives random map/unmap/access/scan/pressure sequences
//! asserting `check_invariants` holds after every single step.

use mc_lint::fig4::{by_id, TRANSITIONS};
use mc_mem::{
    AccessKind, MemConfig, MemorySystem, Nanos, PageFlags, PageKind, TierId, TieringPolicy, VPage,
};
use multi_clock::{MultiClock, MultiClockConfig, PageState, WhichList};
use proptest::prelude::*;

fn setup() -> (MemorySystem, MultiClock) {
    let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
    let mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
    (mem, mc)
}

fn map_page(mem: &mut MemorySystem, mc: &mut MultiClock, v: u64, tier: TierId) -> mc_mem::FrameId {
    let f = mem.alloc_page_in_tier(PageKind::Anon, tier).unwrap();
    mem.map(VPage::new(v), f).unwrap();
    mc.on_page_mapped(mem, f);
    f
}

#[test]
fn transition_5_new_pages_enter_inactive_unreferenced() {
    let (mut mem, mut mc) = setup();
    let f = map_page(&mut mem, &mut mc, 1, TierId::TOP);
    assert_eq!(mc.state_of(f), Some(PageState::InactiveUnref));
    mc.assert_invariants(&mem);
}

#[test]
fn transitions_1_2_reference_bit_toggles_inactive_state() {
    let (mut mem, mut mc) = setup();
    let f = map_page(&mut mem, &mut mc, 1, TierId::TOP);
    // (2): access observed at scan -> inactive referenced.
    mem.access(VPage::new(1), AccessKind::Read).unwrap();
    mc.tick(&mut mem, Nanos::from_secs(1));
    assert_eq!(mc.state_of(f), Some(PageState::InactiveRef));
    // (1) downward: unreferenced scan decays it back.
    mc.tick(&mut mem, Nanos::from_secs(2));
    assert_eq!(mc.state_of(f), Some(PageState::InactiveUnref));
}

#[test]
fn transition_6_second_observation_activates() {
    let (mut mem, mut mc) = setup();
    let f = map_page(&mut mem, &mut mc, 1, TierId::TOP);
    for s in 1..=2u64 {
        mem.access(VPage::new(1), AccessKind::Read).unwrap();
        mc.tick(&mut mem, Nanos::from_secs(s));
    }
    assert_eq!(mc.state_of(f), Some(PageState::ActiveUnref));
    assert!(mem.frame(f).flags().contains(PageFlags::ACTIVE));
}

#[test]
fn transitions_7_8_active_pages_become_referenced() {
    let (mut mem, mut mc) = setup();
    let f = map_page(&mut mem, &mut mc, 1, TierId::TOP);
    for s in 1..=3u64 {
        mem.access(VPage::new(1), AccessKind::Read).unwrap();
        mc.tick(&mut mem, Nanos::from_secs(s));
    }
    assert_eq!(mc.state_of(f), Some(PageState::ActiveRef));
    assert!(mem.frame(f).flags().contains(PageFlags::REFERENCED));
}

#[test]
fn transition_9_long_idle_active_page_deactivates_under_pressure() {
    let (mut mem, mut mc) = setup();
    // Fill DRAM so pressure has something to do.
    let mut v = 0u64;
    let mut frames = Vec::new();
    while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
        mem.map(VPage::new(v), f).unwrap();
        mc.on_page_mapped(&mut mem, f);
        frames.push(f);
        v += 1;
    }
    // Activate most pages, then let them idle: under pressure the
    // sqrt(10n):1 ratio rule forces unreferenced actives back to the
    // inactive list (transition 9).
    for f in &frames {
        mc.on_supervised_access(&mut mem, *f, AccessKind::Read);
        mc.on_supervised_access(&mut mem, *f, AccessKind::Read);
    }
    assert_eq!(mc.state_of(frames[0]), Some(PageState::ActiveUnref));
    mc.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
    assert!(mc.stats().deactivations > 0, "ratio rule deactivated pages");
    let inactive_now = mc
        .tier_lists(TierId::TOP)
        .list_len(PageKind::Anon, WhichList::Inactive);
    assert!(
        inactive_now > 0,
        "deactivated pages joined the inactive list"
    );
    mc.assert_invariants(&mem);
}

#[test]
fn transition_10_12_promote_entry_and_absorb() {
    let (mut mem, mut mc) = setup();
    let f = map_page(&mut mem, &mut mc, 1, TierId::TOP);
    for _ in 0..4 {
        mc.on_supervised_access(&mut mem, f, AccessKind::Read);
    }
    assert_eq!(mc.state_of(f), Some(PageState::Promote));
    assert!(mem.frame(f).flags().contains(PageFlags::PROMOTE));
    // (12): further accesses keep it there.
    mc.on_supervised_access(&mut mem, f, AccessKind::Write);
    assert_eq!(mc.state_of(f), Some(PageState::Promote));
    mc.assert_invariants(&mem);
}

#[test]
fn transition_11_unreferenced_promote_page_ages_to_active() {
    let (mut mem, mut mc) = setup();
    let f = map_page(&mut mem, &mut mc, 1, TierId::TOP);
    for _ in 0..4 {
        mc.on_supervised_access(&mut mem, f, AccessKind::Read);
    }
    mc.tick(&mut mem, Nanos::from_secs(1));
    assert_eq!(mc.state_of(f), Some(PageState::ActiveUnref));
    assert!(!mem.frame(f).flags().contains(PageFlags::PROMOTE));
}

#[test]
fn transition_13_lower_tier_promote_pages_migrate_up() {
    let (mut mem, mut mc) = setup();
    let f = map_page(&mut mem, &mut mc, 1, TierId::new(1));
    for _ in 0..4 {
        mc.on_supervised_access(&mut mem, f, AccessKind::Read);
    }
    let out = mc.tick(&mut mem, Nanos::from_secs(1));
    assert_eq!(out.promoted, 1);
    let nf = mem.translate(VPage::new(1)).unwrap();
    assert_eq!(mem.frame(nf).tier(), TierId::TOP);
    assert_eq!(mc.state_of(nf), Some(PageState::ActiveRef));
    mc.assert_invariants(&mem);
}

#[test]
fn transition_3_cold_inactive_pages_demote_under_pressure() {
    let (mut mem, mut mc) = setup();
    let mut v = 0u64;
    while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
        mem.map(VPage::new(v), f).unwrap();
        mc.on_page_mapped(&mut mem, f);
        v += 1;
    }
    let out = mc.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
    assert!(out.demoted > 0);
    assert!(mc.stats().demotions > 0);
    mc.assert_invariants(&mem);
}

#[test]
fn transition_4_freed_pages_leave_the_machine() {
    let (mut mem, mut mc) = setup();
    let f = map_page(&mut mem, &mut mc, 1, TierId::TOP);
    mc.on_page_unmapped(&mut mem, f);
    mem.free_page(f).unwrap();
    assert_eq!(mc.state_of(f), None);
    mc.assert_invariants(&mem);
}

#[test]
fn full_ladder_then_demotion_round_trip_preserves_invariants() {
    let (mut mem, mut mc) = setup();
    let _f = map_page(&mut mem, &mut mc, 7, TierId::new(1));
    // Up: four observed accesses -> promoted.
    for s in 1..=4u64 {
        mem.access(VPage::new(7), AccessKind::Read).unwrap();
        mc.tick(&mut mem, Nanos::from_secs(s));
        mc.assert_invariants(&mem);
    }
    let nf = mem.translate(VPage::new(7)).unwrap();
    assert_eq!(mem.frame(nf).tier(), TierId::TOP);
    // Down: go cold; decay to inactive; fill DRAM; pressure demotes it.
    for s in 5..=10u64 {
        mc.tick(&mut mem, Nanos::from_secs(s));
        mc.assert_invariants(&mem);
    }
    let mut v = 100u64;
    while let Ok(f2) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
        mem.map(VPage::new(v), f2).unwrap();
        mc.on_page_mapped(&mut mem, f2);
        v += 1;
    }
    mc.on_pressure(&mut mem, TierId::TOP, Nanos::from_secs(11));
    mc.assert_invariants(&mem);
    // The tier is balanced again; the formerly hot page either survived
    // (fresh never-touched pages are equally cold demotion candidates) or
    // was demoted — both placements are legal; what matters is that
    // reclaim made room and the structure stayed consistent.
    assert!(mem.tier_balanced(TierId::TOP));
    assert!(mc.stats().demotions > 0);
}

// ---------------------------------------------------------------------
// Runtime ladder vs the lint's canonical Fig. 4 table.
// ---------------------------------------------------------------------

/// The table name of a runtime state (matches `mc_lint::fig4` spelling).
fn table_name(s: PageState) -> &'static str {
    match s {
        PageState::InactiveUnref => "InactiveUnref",
        PageState::InactiveRef => "InactiveRef",
        PageState::ActiveUnref => "ActiveUnref",
        PageState::ActiveRef => "ActiveRef",
        PageState::Promote => "Promote",
        PageState::Unevictable => "Unevictable",
    }
}

#[test]
fn on_access_agrees_with_fig4_table() {
    // The access ladder is exactly the table rows flagged on_access_step.
    let ladder_ids: Vec<u8> = TRANSITIONS
        .iter()
        .filter(|t| t.on_access_step)
        .map(|t| t.id)
        .collect();
    assert_eq!(ladder_ids, [2, 6, 7, 10, 12]);

    // Each runtime edge matches the table row that starts at this state.
    for state in [
        PageState::InactiveUnref,
        PageState::InactiveRef,
        PageState::ActiveUnref,
        PageState::ActiveRef,
        PageState::Promote,
    ] {
        let row = TRANSITIONS
            .iter()
            .find(|t| t.on_access_step && t.from == table_name(state))
            .unwrap_or_else(|| panic!("no access edge out of {state}"));
        assert_eq!(
            table_name(state.on_access()),
            row.to,
            "on_access({state}) disagrees with fig4 row {}",
            row.id
        );
    }

    // Unevictable is a fixed point and appears in no table row.
    assert_eq!(PageState::Unevictable.on_access(), PageState::Unevictable);
    assert!(TRANSITIONS
        .iter()
        .all(|t| t.from != "Unevictable" && t.to != "Unevictable"));

    // The table is internally sound: ids 1..=13 present exactly once.
    for id in 1..=13u8 {
        assert!(by_id(id).is_some(), "missing transition id {id}");
    }
    assert_eq!(TRANSITIONS.len(), 13);
}

// ---------------------------------------------------------------------
// Random-sequence invariant preservation.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    /// Fault in and track one new page (no-op when the machine is full).
    Map,
    /// Unmap and untrack the page at `index % live`.
    Unmap(usize),
    /// Access the page at `index % live`; `supervised` also steps the
    /// ladder immediately via the policy hook (mark_page_accessed path).
    Access {
        index: usize,
        write: bool,
        supervised: bool,
    },
    /// One kpromoted scan tick.
    Tick,
    /// Direct memory-pressure callback on a tier.
    Pressure(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Map),
        (0usize..4096).prop_map(Op::Unmap),
        (0usize..4096, any::<bool>(), any::<bool>()).prop_map(|(index, write, supervised)| {
            Op::Access {
                index,
                write,
                supervised,
            }
        }),
        Just(Op::Tick),
        (0usize..2).prop_map(Op::Pressure),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_after_every_step(ops in prop::collection::vec(op(), 1..120)) {
        // Small enough that pressure, demotion and promotion all trigger.
        let mut mem = MemorySystem::new(MemConfig::two_tier(24, 48));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let mut live: Vec<VPage> = Vec::new();
        let mut next_vp = 0u64;
        let mut ticks = 0u64;

        for op in ops {
            match &op {
                Op::Map => {
                    if let Ok(frame) = mem.alloc_page(PageKind::Anon) {
                        let vp = VPage::new(next_vp);
                        next_vp += 1;
                        mem.map(vp, frame).expect("fresh vpage maps");
                        mc.on_page_mapped(&mut mem, frame);
                        live.push(vp);
                    }
                }
                Op::Unmap(index) => {
                    if !live.is_empty() {
                        let vp = live.swap_remove(index % live.len());
                        let frame = mem.unmap(vp).expect("live page unmaps");
                        mc.on_page_unmapped(&mut mem, frame);
                        mem.free_page(frame).expect("unmapped page frees");
                    }
                }
                Op::Access { index, write, supervised } => {
                    if !live.is_empty() {
                        let vp = live[index % live.len()];
                        let kind = if *write { AccessKind::Write } else { AccessKind::Read };
                        mem.access(vp, kind).expect("live page is accessible");
                        if *supervised {
                            let frame = mem.translate(vp).expect("live page translates");
                            mc.on_supervised_access(&mut mem, frame, kind);
                        }
                    }
                }
                Op::Tick => {
                    ticks += 1;
                    mc.tick(&mut mem, Nanos::from_secs(ticks));
                }
                Op::Pressure(t) => {
                    mc.on_pressure(&mut mem, TierId::new(*t as u8), Nanos::from_secs(ticks));
                }
            }
            let violations = mc.check_invariants(&mem);
            prop_assert!(
                violations.is_empty(),
                "invariants broken after {:?}: {:?}",
                op,
                violations
            );
        }
    }
}
