//! Property tests for the adaptive region map (`multi_clock::region`):
//! random track/untrack/heat traces crossed with random granule sizes
//! and split/merge thresholds, holding two invariants after **every**
//! step —
//!
//! 1. the regions are always an exact partition of the frame space
//!    (every frame in exactly one region, no gaps, no empty or
//!    over-cap regions, aggregates equal to their granule sums), and
//! 2. region hotness is exact bookkeeping, never an estimate: the
//!    summed region heat equals the sum of per-page contributions the
//!    trace made this window, across any interleaving of splits and
//!    merges (heat conservation).
//!
//! A reference model (a frame→heat map plus a tracked set) is replayed
//! alongside; `RegionMap::check` covers the structural half and the
//! model the accounting half.

use mc_mem::FrameId;
use multi_clock::{RegionKnobs, RegionMap};
use proptest::prelude::*;
use std::collections::BTreeMap;

const FRAMES: u64 = 512;

#[derive(Debug, Clone)]
enum Op {
    /// Start tracking the frame `index % FRAMES` (skipped if tracked —
    /// the policy only calls `track` on a none→some state transition).
    Track(u64),
    /// Stop tracking the `index % live`-th tracked frame.
    Untrack(usize),
    /// Record `amount` heat against the `index % live`-th tracked frame.
    Heat(usize, u64),
    /// One adaptation step: split hot, merge cold, reset the window.
    Rebalance,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..FRAMES).prop_map(Op::Track),
        (0usize..4096).prop_map(Op::Untrack),
        (0usize..4096, 1u64..32).prop_map(|(i, a)| Op::Heat(i, a)),
        Just(Op::Rebalance),
    ]
}

/// Random but always-valid knobs: `merge_heat` strictly below
/// `split_heat`, non-zero granule and cap.
fn knobs() -> impl Strategy<Value = RegionKnobs> {
    (1usize..=16, 1usize..=32, 2u64..=64, 0u64..=100).prop_map(
        |(granule, max_granules, split_heat, merge_pct)| RegionKnobs {
            granule,
            max_granules,
            split_heat,
            merge_heat: split_heat * merge_pct / 101,
            churn_interval: false,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_and_heat_accounting_stay_exact(
        knobs in knobs(),
        ops in prop::collection::vec(op(), 1..160),
    ) {
        let mut map = RegionMap::new(FRAMES, knobs);
        let mut tracked: Vec<u64> = Vec::new();
        // Per-page heat contributed this window (the reference model).
        let mut page_heat: BTreeMap<u64, u64> = BTreeMap::new();

        for op in ops {
            match &op {
                Op::Track(frame) => {
                    if !tracked.contains(frame) {
                        map.track(FrameId::new(*frame as u32));
                        tracked.push(*frame);
                    }
                }
                Op::Untrack(index) => {
                    if !tracked.is_empty() {
                        let frame = tracked.swap_remove(index % tracked.len());
                        map.untrack(FrameId::new(frame as u32));
                    }
                }
                Op::Heat(index, amount) => {
                    if !tracked.is_empty() {
                        let frame = tracked[index % tracked.len()];
                        map.record_heat(FrameId::new(frame as u32), *amount);
                        *page_heat.entry(frame).or_insert(0) += amount;
                    }
                }
                Op::Rebalance => {
                    map.rebalance();
                    page_heat.clear(); // the window reset
                }
            }

            // (1) Exact partition, exact aggregates, cap respected.
            if let Err(msg) = map.check() {
                prop_assert!(false, "after {:?}: {}", op, msg);
            }

            let stats = map.stats();
            prop_assert_eq!(stats.tracked, tracked.len() as u64,
                "tracked count diverged after {:?}", op);

            // (2) Region hotness sums match the per-page counters.
            let model_heat: u64 = page_heat.values().sum();
            prop_assert_eq!(stats.window_heat, model_heat,
                "window heat diverged after {:?}", op);

            // Every tracked frame sits inside a populated region, and the
            // populated extents are sorted, disjoint and sized like the
            // stats claim.
            let ranges = map.scan_ranges();
            for pair in ranges.windows(2) {
                prop_assert!(pair[0].start + pair[0].len <= pair[1].start,
                    "scan ranges overlap or are unsorted");
            }
            let extent: u64 = ranges.iter().map(|r| r.len).sum();
            prop_assert_eq!(stats.populated_frames, extent);
            for &frame in &tracked {
                prop_assert!(map.covers_tracked(FrameId::new(frame as u32)),
                    "tracked frame {} not covered after {:?}", frame, op);
                prop_assert!(ranges.iter().any(|r| r.contains(frame)),
                    "tracked frame {} outside every scan range after {:?}", frame, op);
            }
        }
    }

    /// Whatever the thresholds do to the boundaries, a rebalance never
    /// loses or invents heat mid-window: recorded heat is conserved
    /// until the reset that ends the same rebalance, and tracked pages
    /// survive any number of adaptation steps.
    #[test]
    fn adaptation_is_pure_bookkeeping(
        knobs in knobs(),
        frames in prop::collection::vec(0u64..FRAMES, 1..40),
        rounds in 1usize..6,
    ) {
        let mut map = RegionMap::new(FRAMES, knobs);
        let mut tracked: Vec<u64> = Vec::new();
        for f in frames {
            if !tracked.contains(&f) {
                map.track(FrameId::new(f as u32));
                tracked.push(f);
            }
        }
        for _ in 0..rounds {
            for &f in &tracked {
                map.record_heat(FrameId::new(f as u32), 7);
            }
            let before = map.stats();
            prop_assert_eq!(before.window_heat, 7 * tracked.len() as u64);
            map.rebalance();
            map.check().unwrap();
            let after = map.stats();
            prop_assert_eq!(after.window_heat, 0, "the window reset");
            prop_assert_eq!(after.tracked, tracked.len() as u64);
            for &f in &tracked {
                prop_assert!(map.covers_tracked(FrameId::new(f as u32)));
            }
        }
    }
}
