//! Property-based tests for the trace codec and heat-map analytics.

use mc_mem::{AccessKind, Nanos, VPage, PAGE_SIZE};
use mc_trace::{Heatmap, Trace, TraceEvent};
use proptest::prelude::*;

fn arb_event_deltas() -> impl Strategy<Value = Vec<(u64, u64, bool, u16)>> {
    // (time delta, page, is_write, bytes)
    prop::collection::vec(
        (
            0u64..10_000,
            0u64..5_000,
            any::<bool>(),
            1u16..=PAGE_SIZE as u16,
        ),
        0..300,
    )
}

fn build(deltas: &[(u64, u64, bool, u16)]) -> Trace {
    let mut t = Trace::new();
    let mut at = 0u64;
    for (d, page, write, bytes) in deltas {
        at += d;
        t.push(TraceEvent {
            at: Nanos::from_nanos(at),
            vpage: VPage::new(*page),
            kind: if *write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            bytes: *bytes,
        });
    }
    t
}

proptest! {
    #[test]
    fn codec_roundtrip_is_lossless(deltas in arb_event_deltas(), mapped in 0u64..1_000_000) {
        let mut t = build(&deltas);
        t.mapped_pages = mapped;
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn truncation_anywhere_is_detected(deltas in arb_event_deltas(), cut in 0usize..64) {
        let t = build(&deltas);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        if buf.len() > 24 {
            // Cut somewhere strictly inside the payload.
            let keep = 24 + (cut % (buf.len() - 24).max(1));
            if keep < buf.len() {
                buf.truncate(keep);
                prop_assert!(Trace::read_from(&mut buf.as_slice()).is_err());
            }
        }
    }

    #[test]
    fn heatmap_conserves_event_counts(deltas in arb_event_deltas(), window_us in 1u64..1_000) {
        let t = build(&deltas);
        let h = Heatmap::build(&t, Nanos::from_micros(window_us));
        let total: u64 = h.counts().iter().flatten().map(|c| *c as u64).sum();
        prop_assert_eq!(total, t.len() as u64, "every event lands in exactly one cell");
        let by_totals: u64 = h.totals().iter().map(|c| *c as u64).sum();
        prop_assert_eq!(by_totals, t.len() as u64);
    }

    #[test]
    fn unique_pages_matches_heatmap_page_axis(deltas in arb_event_deltas()) {
        let t = build(&deltas);
        let h = Heatmap::build(&t, Nanos::from_micros(100));
        prop_assert_eq!(h.pages().len(), t.unique_pages());
    }
}
