//! Trace replay: drive any [`Memory`] from a recorded trace.

use crate::trace::Trace;
use mc_mem::Memory;
use mc_mem::{AccessKind, Nanos, PageKind, PAGE_SIZE};

/// What a replay did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Events issued against the target memory.
    pub events_replayed: u64,
    /// Total idle (inter-arrival) time inserted to honour the trace's
    /// original pacing.
    pub idle_time: Nanos,
    /// Virtual time the replay took on the target.
    pub elapsed: Nanos,
}

/// Replays `trace` against `mem`, preserving the original inter-arrival
/// gaps: if the target memory is slower than the recording one, accesses
/// slip later (an open-loop replay would be unfaithful to a closed-loop
/// workload; this replay is closed-loop with think-time).
///
/// Pages are addressed by their recorded page numbers inside one region
/// mapped to cover the trace's address range.
pub fn replay<M: Memory + ?Sized>(trace: &Trace, mem: &mut M) -> ReplayStats {
    let mut stats = ReplayStats::default();
    if trace.is_empty() {
        return stats;
    }
    let max_page = trace
        .events()
        .iter()
        .map(|e| e.vpage.raw())
        .max()
        .expect("nonempty");
    let region = mem.mmap((max_page as usize + 1) * PAGE_SIZE, PageKind::Anon);
    let start = mem.now();
    let first_at = trace.events()[0].at;
    let mut prev_at = first_at;
    for e in trace.events() {
        // Honour the recorded think time between events.
        let gap = e.at - prev_at;
        let due = mem.now() + gap;
        prev_at = e.at;
        if gap > Nanos::ZERO {
            mem.compute(gap);
        }
        let _ = due;
        let addr = region.add(e.vpage.raw() * PAGE_SIZE as u64);
        match e.kind {
            AccessKind::Read => mem.read(addr, e.bytes as usize),
            AccessKind::Write => mem.write(addr, e.bytes as usize),
        }
        stats.events_replayed += 1;
        stats.idle_time += gap;
    }
    stats.elapsed = mem.now() - start;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Recorder;
    use crate::trace::TraceEvent;
    use mc_mem::SimpleMemory;
    use mc_mem::VPage;

    fn ev(at: u64, page: u64, bytes: u16) -> TraceEvent {
        TraceEvent {
            at: Nanos::from_nanos(at),
            vpage: VPage::new(page),
            kind: AccessKind::Read,
            bytes,
        }
    }

    #[test]
    fn replay_touches_the_recorded_pages() {
        let trace: Trace = [ev(0, 0, 8), ev(100, 3, 8), ev(200, 3, 8)]
            .into_iter()
            .collect();
        let mut mem = SimpleMemory::new();
        let stats = replay(&trace, &mut mem);
        assert_eq!(stats.events_replayed, 3);
        assert_eq!(mem.accesses, 3);
    }

    #[test]
    fn replay_preserves_think_time() {
        let trace: Trace = [ev(0, 0, 8), ev(10_000, 0, 8)].into_iter().collect();
        let mut mem = SimpleMemory::new();
        let stats = replay(&trace, &mut mem);
        assert_eq!(stats.idle_time.as_nanos(), 10_000);
        // Elapsed = think time + two access costs.
        assert_eq!(stats.elapsed.as_nanos(), 10_000 + 2 * 100);
    }

    #[test]
    fn record_then_replay_produces_identical_touch_sequence() {
        // Round-trip: record a run, replay it, record the replay — the
        // two traces touch the same pages in the same order.
        let mut rec = Recorder::new(SimpleMemory::new());
        let a = rec.mmap(PAGE_SIZE * 8, PageKind::Anon);
        for i in [0u64, 5, 2, 5, 7, 1] {
            rec.read(a.add(i * PAGE_SIZE as u64), 16);
            rec.compute(Nanos::from_nanos(50));
        }
        let original = rec.finish();

        let mut rec2 = Recorder::new(SimpleMemory::new());
        replay(&original, &mut rec2);
        let replayed = rec2.finish();

        let pages = |t: &Trace| t.events().iter().map(|e| e.vpage.raw()).collect::<Vec<_>>();
        assert_eq!(pages(&original), pages(&replayed));
        let sizes = |t: &Trace| t.events().iter().map(|e| e.bytes).collect::<Vec<_>>();
        assert_eq!(sizes(&original), sizes(&replayed));
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let mut mem = SimpleMemory::new();
        let stats = replay(&Trace::new(), &mut mem);
        assert_eq!(stats.events_replayed, 0);
        assert_eq!(mem.accesses, 0);
    }
}
