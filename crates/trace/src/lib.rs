//! # mc-trace — page-access tracing, sampling and replay
//!
//! The paper's motivation study (§II-A) is built on page-access traces:
//! "we randomly sampled pages from memory, assigned them unique
//! identifiers, and traced the accesses to these sampled pages". This
//! crate provides that methodology as reusable infrastructure:
//!
//! * [`Recorder`] — a [`mc_mem::Memory`] decorator that records every page touch
//!   of the workload running above it (optionally restricted to a sampled
//!   page set, like the paper's tracer) while passing accesses through to
//!   the underlying memory;
//! * [`Trace`] — the recorded event sequence, with a compact binary
//!   serialisation for storing and sharing traces;
//! * [`replay()`](replay::replay) — drives any [`mc_mem::Memory`] (including the full tiering
//!   simulation) from a trace, reproducing the original page-touch
//!   sequence without the original application;
//! * [`Heatmap`] — per-page × per-window access counts computed from a
//!   trace (the data behind Fig. 1), plus the Fig. 2
//!   observation/performance-window statistic.
//!
//! ```
//! use mc_trace::{Recorder, replay};
//! use mc_mem::{Memory, SimpleMemory};
//! use mc_mem::PageKind;
//!
//! // Record a workload.
//! let mut rec = Recorder::new(SimpleMemory::new());
//! let a = rec.mmap(4096 * 4, PageKind::Anon);
//! rec.read(a, 8);
//! rec.write(a.add(4096), 16);
//! let trace = rec.finish();
//! assert_eq!(trace.len(), 2);
//!
//! // Replay it elsewhere.
//! let mut target = SimpleMemory::new();
//! let stats = replay(&trace, &mut target);
//! assert_eq!(stats.events_replayed, 2);
//! ```

pub mod heatmap;
pub mod record;
pub mod replay;
pub mod trace;

pub use heatmap::Heatmap;
pub use record::Recorder;
pub use replay::{replay, ReplayStats};
pub use trace::{Trace, TraceEvent};
