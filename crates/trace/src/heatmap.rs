//! Heat-map and window statistics over traces (Figs. 1-2 as functions of
//! *any* trace, not just the synthetic generators).

use crate::trace::Trace;
use mc_mem::{Nanos, VPage};
use std::collections::HashMap;

/// Per-page, per-window access counts computed from a trace.
#[derive(Debug, Clone)]
pub struct Heatmap {
    pages: Vec<VPage>,
    /// `counts[window][page_index]`.
    counts: Vec<Vec<u32>>,
    window: Nanos,
}

impl Heatmap {
    /// Builds a heat map with the given window length over every page the
    /// trace touches (pages ordered by first id, like the paper's
    /// "sorted in ascending identifier order" Y axis).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn build(trace: &Trace, window: Nanos) -> Self {
        assert!(window > Nanos::ZERO, "window must be positive");
        let mut pages: Vec<u64> = trace.events().iter().map(|e| e.vpage.raw()).collect();
        pages.sort_unstable();
        pages.dedup();
        let index: HashMap<u64, usize> = pages.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let start = trace.events().first().map(|e| e.at).unwrap_or(Nanos::ZERO);
        let windows = (trace.duration().as_nanos() / window.as_nanos()) as usize + 1;
        let mut counts = vec![vec![0u32; pages.len()]; windows];
        for e in trace.events() {
            let w = ((e.at - start).as_nanos() / window.as_nanos()) as usize;
            counts[w][index[&e.vpage.raw()]] += 1;
        }
        Heatmap {
            pages: pages.into_iter().map(VPage::new).collect(),
            counts,
            window,
        }
    }

    /// The pages on the Y axis, ascending.
    pub fn pages(&self) -> &[VPage] {
        &self.pages
    }

    /// The count matrix, window-major.
    pub fn counts(&self) -> &[Vec<u32>] {
        &self.counts
    }

    /// The window length.
    pub fn window(&self) -> Nanos {
        self.window
    }

    /// Total accesses per page across all windows.
    pub fn totals(&self) -> Vec<u32> {
        let mut t = vec![0u32; self.pages.len()];
        for row in &self.counts {
            for (i, c) in row.iter().enumerate() {
                t[i] += c;
            }
        }
        t
    }

    /// The `n` hottest pages as `(page, total accesses)`, hottest first.
    /// Ties break toward the lower page id so the order is deterministic.
    pub fn top_n(&self, n: usize) -> Vec<(VPage, u32)> {
        let totals = self.totals();
        let mut ranked: Vec<(VPage, u32)> = self.pages.iter().copied().zip(totals).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));
        ranked.truncate(n);
        ranked
    }

    /// The Fig. 2 statistic: mean accesses in the performance window for
    /// pages accessed `(once, multiple-times)` in the preceding
    /// observation window, over all adjacent window pairs.
    pub fn once_vs_multi(&self) -> (f64, f64) {
        let mut once = Vec::new();
        let mut multi = Vec::new();
        let mut w = 0;
        while w + 1 < self.counts.len() {
            for p in 0..self.pages.len() {
                let obs = self.counts[w][p];
                let perf = self.counts[w + 1][p] as f64;
                match obs {
                    1 => once.push(perf),
                    x if x > 1 => multi.push(perf),
                    _ => {}
                }
            }
            w += 2;
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        (mean(&once), mean(&multi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use mc_mem::AccessKind;

    fn ev(at_us: u64, page: u64) -> TraceEvent {
        TraceEvent {
            at: Nanos::from_micros(at_us),
            vpage: VPage::new(page),
            kind: AccessKind::Read,
            bytes: 8,
        }
    }

    #[test]
    fn counts_land_in_the_right_windows() {
        let trace: Trace = [ev(0, 10), ev(5, 10), ev(15, 20), ev(25, 10)]
            .into_iter()
            .collect();
        let h = Heatmap::build(&trace, Nanos::from_micros(10));
        assert_eq!(h.pages(), &[VPage::new(10), VPage::new(20)]);
        assert_eq!(h.counts().len(), 3);
        assert_eq!(h.counts()[0], vec![2, 0]);
        assert_eq!(h.counts()[1], vec![0, 1]);
        assert_eq!(h.counts()[2], vec![1, 0]);
        assert_eq!(h.totals(), vec![3, 1]);
    }

    #[test]
    fn once_vs_multi_statistic() {
        // Window pairs: (w0 obs, w1 perf). Page 1: obs 2 -> perf 4.
        // Page 2: obs 1 -> perf 0.
        let mut events = vec![ev(0, 1), ev(1, 1), ev(2, 2)];
        for i in 0..4 {
            events.push(ev(10 + i, 1));
        }
        let trace: Trace = events.into_iter().collect();
        let h = Heatmap::build(&trace, Nanos::from_micros(10));
        let (once, multi) = h.once_vs_multi();
        assert_eq!(once, 0.0);
        assert_eq!(multi, 4.0);
    }

    #[test]
    fn empty_trace_yields_empty_heatmap() {
        let h = Heatmap::build(&Trace::new(), Nanos::from_micros(10));
        assert!(h.pages().is_empty());
        assert_eq!(h.once_vs_multi(), (0.0, 0.0));
        assert!(h.top_n(5).is_empty());
    }

    #[test]
    fn top_n_ranks_hottest_first_with_deterministic_ties() {
        let trace: Trace = [ev(0, 10), ev(1, 10), ev(2, 20), ev(3, 30), ev(4, 30)]
            .into_iter()
            .collect();
        let h = Heatmap::build(&trace, Nanos::from_micros(10));
        let top = h.top_n(2);
        assert_eq!(top, vec![(VPage::new(10), 2), (VPage::new(30), 2)]);
        assert_eq!(h.top_n(10).len(), 3);
    }
}
