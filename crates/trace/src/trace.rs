//! The trace data structure and its binary codec.

use mc_mem::{AccessKind, Nanos, VPage};
use std::io::{self, Read, Write};

/// One recorded page touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the access.
    pub at: Nanos,
    /// The page touched.
    pub vpage: VPage,
    /// Load or store.
    pub kind: AccessKind,
    /// Bytes touched within the page (1..=4096).
    pub bytes: u16,
}

/// A recorded page-access trace.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    /// Total pages the traced address space had mapped (for replay
    /// pre-sizing); zero if unknown.
    pub mapped_pages: u64,
}

/// Magic bytes of the binary format.
const MAGIC: &[u8; 8] = b"MCTRACE1";

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event. Events must be appended in non-decreasing time
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous event or `bytes` is zero or
    /// exceeds a page.
    pub fn push(&mut self, ev: TraceEvent) {
        if let Some(last) = self.events.last() {
            assert!(ev.at >= last.at, "trace events must be time-ordered");
        }
        assert!(
            (1..=mc_mem::PAGE_SIZE as u16).contains(&ev.bytes),
            "bytes must be within a page"
        );
        self.events.push(ev);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Duration from first to last event.
    pub fn duration(&self) -> Nanos {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.at - a.at,
            _ => Nanos::ZERO,
        }
    }

    /// Distinct pages touched.
    pub fn unique_pages(&self) -> usize {
        let mut pages: Vec<u64> = self.events.iter().map(|e| e.vpage.raw()).collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }

    /// Writes the compact binary form (fixed 19 bytes per event after a
    /// 24-byte header).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.mapped_pages.to_le_bytes())?;
        w.write_all(&(self.events.len() as u64).to_le_bytes())?;
        for e in &self.events {
            w.write_all(&e.at.as_nanos().to_le_bytes())?;
            w.write_all(&e.vpage.raw().to_le_bytes())?;
            w.write_all(&e.bytes.to_le_bytes())?;
            w.write_all(&[u8::from(e.kind.is_write())])?;
        }
        Ok(())
    }

    /// Reads a trace previously written with [`Self::write_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for bad magic, corrupt fields or truncation.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u64buf)?;
        let mapped_pages = u64::from_le_bytes(u64buf);
        r.read_exact(&mut u64buf)?;
        let n = u64::from_le_bytes(u64buf) as usize;
        let mut trace = Trace {
            events: Vec::with_capacity(n),
            mapped_pages,
        };
        let mut u16buf = [0u8; 2];
        let mut u8buf = [0u8; 1];
        let mut prev = Nanos::ZERO;
        for _ in 0..n {
            r.read_exact(&mut u64buf)?;
            let at = Nanos::from_nanos(u64::from_le_bytes(u64buf));
            r.read_exact(&mut u64buf)?;
            let vpage = VPage::new(u64::from_le_bytes(u64buf));
            r.read_exact(&mut u16buf)?;
            let bytes = u16::from_le_bytes(u16buf);
            r.read_exact(&mut u8buf)?;
            let kind = if u8buf[0] != 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if at < prev || bytes == 0 || bytes as usize > mc_mem::PAGE_SIZE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "corrupt trace event",
                ));
            }
            prev = at;
            trace.events.push(TraceEvent {
                at,
                vpage,
                kind,
                bytes,
            });
        }
        Ok(trace)
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        let mut t = Trace::new();
        for e in iter {
            t.push(e);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, page: u64, write: bool) -> TraceEvent {
        TraceEvent {
            at: Nanos::from_nanos(at),
            vpage: VPage::new(page),
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            bytes: 8,
        }
    }

    #[test]
    fn push_and_stats() {
        let t: Trace = [ev(10, 1, false), ev(20, 2, true), ev(30, 1, false)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t.unique_pages(), 2);
        assert_eq!(t.duration().as_nanos(), 20);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_rejected() {
        let mut t = Trace::new();
        t.push(ev(20, 1, false));
        t.push(ev(10, 1, false));
    }

    #[test]
    fn binary_roundtrip() {
        let mut t: Trace = (0..500u64).map(|i| ev(i * 7, i % 37, i % 3 == 0)).collect();
        t.mapped_pages = 37;
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 24 + 500 * 19);
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut buf = Vec::new();
        Trace::new().write_to(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(Trace::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let t: Trace = [ev(1, 1, false), ev(2, 2, false)].into_iter().collect();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Trace::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_roundtrip() {
        let mut buf = Vec::new();
        Trace::new().write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.duration(), Nanos::ZERO);
    }
}
