//! Trace recording: a [`Memory`] decorator.

use crate::trace::{Trace, TraceEvent};
use mc_mem::Memory;
use mc_mem::{AccessKind, Nanos, PageKind, VAddr, VPage, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Wraps a [`Memory`], recording every page touch the workload performs
/// while forwarding all operations unchanged.
///
/// With [`Recorder::with_sampling`], only a random subset of pages is
/// recorded — the paper's §II-A technique for keeping tracing overhead
/// tractable ("we randomly sampled pages from memory ... and traced the
/// accesses to these sampled pages").
#[derive(Debug)]
pub struct Recorder<M> {
    inner: M,
    trace: Trace,
    /// When set, only pages in the set are recorded.
    sample: Option<SampleFilter>,
    mapped_pages: u64,
}

#[derive(Debug)]
struct SampleFilter {
    /// Probability of admitting a newly seen page into the sample.
    rate: f64,
    rng: StdRng,
    admitted: HashSet<u64>,
    rejected: HashSet<u64>,
    limit: usize,
}

impl<M: Memory> Recorder<M> {
    /// Records every page touch.
    pub fn new(inner: M) -> Self {
        Recorder {
            inner,
            trace: Trace::new(),
            sample: None,
            mapped_pages: 0,
        }
    }

    /// Records only a random sample of pages: each page is admitted with
    /// probability `rate` on first touch, up to `limit` pages (the
    /// paper's 50-page samples use a small limit).
    pub fn with_sampling(inner: M, rate: f64, limit: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        assert!(limit > 0, "sample limit must be positive");
        Recorder {
            inner,
            trace: Trace::new(),
            sample: Some(SampleFilter {
                rate,
                rng: StdRng::seed_from_u64(seed),
                admitted: HashSet::new(),
                rejected: HashSet::new(),
                limit,
            }),
            mapped_pages: 0,
        }
    }

    /// The pages currently admitted to the sample (empty when recording
    /// everything).
    pub fn sampled_pages(&self) -> Vec<VPage> {
        match &self.sample {
            Some(s) => {
                let mut v: Vec<u64> = s.admitted.iter().copied().collect();
                v.sort_unstable();
                v.into_iter().map(VPage::new).collect()
            }
            None => Vec::new(),
        }
    }

    /// Stops recording and returns the trace.
    pub fn finish(mut self) -> Trace {
        self.trace.mapped_pages = self.mapped_pages;
        self.trace
    }

    /// Access to the wrapped memory.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn admit(&mut self, vpage: VPage) -> bool {
        match &mut self.sample {
            None => true,
            Some(s) => {
                let raw = vpage.raw();
                if s.admitted.contains(&raw) {
                    return true;
                }
                if s.rejected.contains(&raw) {
                    return false;
                }
                if s.admitted.len() < s.limit && s.rng.gen_bool(s.rate) {
                    s.admitted.insert(raw);
                    true
                } else {
                    s.rejected.insert(raw);
                    false
                }
            }
        }
    }

    fn record(&mut self, addr: VAddr, len: usize, kind: AccessKind) {
        let at = self.inner.now();
        let len = len.max(1);
        let mut page = addr.page();
        let last = addr.add(len as u64 - 1).page();
        let mut offset = addr.page_offset();
        let mut remaining = len;
        loop {
            let in_page = (PAGE_SIZE - offset).min(remaining);
            if self.admit(page) {
                self.trace.push(TraceEvent {
                    at,
                    vpage: page,
                    kind,
                    bytes: in_page as u16,
                });
            }
            remaining -= in_page;
            if page == last {
                break;
            }
            page = page.next();
            offset = 0;
        }
    }
}

impl<M: Memory> Memory for Recorder<M> {
    fn mmap(&mut self, bytes: usize, kind: PageKind) -> VAddr {
        self.mapped_pages += bytes.div_ceil(PAGE_SIZE) as u64;
        self.inner.mmap(bytes, kind)
    }

    fn read(&mut self, addr: VAddr, len: usize) {
        self.record(addr, len, AccessKind::Read);
        self.inner.read(addr, len);
    }

    fn write(&mut self, addr: VAddr, len: usize) {
        self.record(addr, len, AccessKind::Write);
        self.inner.write(addr, len);
    }

    fn write_bytes(&mut self, addr: VAddr, data: &[u8]) {
        self.record(addr, data.len(), AccessKind::Write);
        self.inner.write_bytes(addr, data);
    }

    fn read_bytes(&mut self, addr: VAddr, buf: &mut [u8]) {
        self.record(addr, buf.len(), AccessKind::Read);
        self.inner.read_bytes(addr, buf);
    }

    fn now(&self) -> Nanos {
        self.inner.now()
    }

    fn compute(&mut self, t: Nanos) {
        self.inner.compute(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_mem::SimpleMemory;

    #[test]
    fn records_all_touches_with_time_and_kind() {
        let mut rec = Recorder::new(SimpleMemory::new());
        let a = rec.mmap(PAGE_SIZE * 4, PageKind::Anon);
        rec.read(a, 8);
        rec.write(a.add(PAGE_SIZE as u64), 100);
        rec.write_bytes(a.add(2 * PAGE_SIZE as u64), b"xyz");
        let t = rec.finish();
        assert_eq!(t.len(), 3);
        assert_eq!(t.mapped_pages, 4);
        let e = t.events();
        assert_eq!(e[0].vpage, VPage::new(0));
        assert_eq!(e[0].kind, AccessKind::Read);
        assert_eq!(e[1].vpage, VPage::new(1));
        assert_eq!(e[1].kind, AccessKind::Write);
        assert_eq!(e[2].bytes, 3);
        assert!(e[1].at > e[0].at, "time flows through the decorator");
    }

    #[test]
    fn spanning_access_records_every_page() {
        let mut rec = Recorder::new(SimpleMemory::new());
        let a = rec.mmap(PAGE_SIZE * 3, PageKind::Anon);
        rec.read(a, 3 * PAGE_SIZE);
        let t = rec.finish();
        assert_eq!(t.len(), 3);
        assert_eq!(t.unique_pages(), 3);
        assert_eq!(t.events()[0].bytes as usize, PAGE_SIZE);
    }

    #[test]
    fn data_plane_passes_through() {
        let mut rec = Recorder::new(SimpleMemory::new());
        let a = rec.mmap(PAGE_SIZE, PageKind::Anon);
        rec.write_bytes(a, b"hello");
        let mut buf = [0u8; 5];
        rec.read_bytes(a, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn sampling_restricts_recorded_pages() {
        let mut rec = Recorder::with_sampling(SimpleMemory::new(), 0.3, 8, 7);
        let a = rec.mmap(PAGE_SIZE * 64, PageKind::Anon);
        for round in 0..3 {
            for i in 0..64u64 {
                rec.read(a.add(i * PAGE_SIZE as u64), 8);
            }
            let _ = round;
        }
        let sampled = rec.sampled_pages();
        assert!(
            !sampled.is_empty() && sampled.len() <= 8,
            "{}",
            sampled.len()
        );
        let t = rec.finish();
        // Every event belongs to a sampled page, and each sampled page
        // appears once per round.
        let sset: HashSet<u64> = sampled.iter().map(|p| p.raw()).collect();
        assert!(t.events().iter().all(|e| sset.contains(&e.vpage.raw())));
        assert_eq!(t.len(), 3 * sampled.len());
    }

    #[test]
    fn sampling_is_stable_per_page() {
        let mut rec = Recorder::with_sampling(SimpleMemory::new(), 0.5, 4, 3);
        let a = rec.mmap(PAGE_SIZE * 16, PageKind::Anon);
        for _ in 0..5 {
            rec.read(a, 8);
        }
        let t = rec.finish();
        // Page 0 was either always recorded or never.
        assert!(t.len() == 5 || t.is_empty());
    }
}
