//! The HybridTier sketch-based frequency policy.
//!
//! HybridTier (arXiv 2312.04789) targets the same problem as MULTI-CLOCK —
//! keep hot pages in fast memory — but replaces the full CLOCK scan with
//! two cheaper mechanisms:
//!
//! 1. **Sampled frequency tracking.** Instead of walking every PTE each
//!    interval, the daemon samples a fixed budget of lower-tier pages per
//!    tick (deterministic rotation through per-tier lists), harvests their
//!    reference bits, and feeds the referenced ones into a count-min
//!    sketch keyed by virtual page. Tracking cost per tick is bounded by
//!    the sample budget, not the machine size.
//! 2. **Direct data placement.** The sketch outlives page mappings (it is
//!    keyed by virtual page, not frame), so when a page faults back in or
//!    is remapped, its historical frequency is consulted *at allocation
//!    time*: pages already known hot are placed in (or immediately moved
//!    to) the fast tier instead of waiting to be rediscovered by scanning.
//!
//! Promotion is frequency-gated (sketch estimate >= threshold), demotion
//! picks low-estimate victims, and periodic halving of the sketch decays
//! stale history. All randomness is the seeded [`mc_fault::SplitMix64`]
//! hash inside the sketch, so runs are bit-deterministic per seed.

use crate::sketch::CmSketch;
use mc_clock::IndexedList;
use mc_mem::{
    AccessKind, FrameId, MemError, MemorySystem, Nanos, PolicyTraits, TickOutcome, TierId,
    TieringPolicy, Topology, VPage,
};
use mc_obs::EventKind;

/// Tunables for [`HybridTier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridTierConfig {
    /// Daemon period.
    pub sample_interval: Nanos,
    /// Pages sampled per lower tier per tick — the tracking budget that
    /// replaces the full scan.
    pub sample_batch: usize,
    /// Sketch estimate at which a page becomes promotion-worthy.
    pub promote_threshold: u32,
    /// log2 of counters per sketch row.
    pub sketch_width_log2: u32,
    /// Sketch rows.
    pub sketch_rows: usize,
    /// Halve the sketch every this many ticks (frequency decay).
    pub age_ticks: u64,
    /// Hash seed for the sketch rows.
    pub seed: u64,
    /// Maximum pages examined per pressure invocation.
    pub reclaim_batch: usize,
}

impl Default for HybridTierConfig {
    fn default() -> Self {
        HybridTierConfig {
            sample_interval: Nanos::from_secs(1),
            sample_batch: 512,
            promote_threshold: 3,
            sketch_width_log2: 12,
            sketch_rows: 4,
            age_ticks: 8,
            seed: 42,
            reclaim_batch: 4096,
        }
    }
}

/// The HybridTier policy: CM-sketch frequency tracking over sampled
/// reference bits, with direct placement of known-hot pages on mapping.
#[derive(Debug)]
pub struct HybridTier {
    cfg: HybridTierConfig,
    sketch: CmSketch,
    /// One rotation list per tier; sampling pops from the front and pushes
    /// survivors to the back, so every page is visited in bounded time.
    tiers: Vec<IndexedList>,
    ticks: u64,
    samples: u64,
    promotions: u64,
    demotions: u64,
    direct_placements: u64,
}

impl HybridTier {
    /// Creates a HybridTier instance for a topology.
    pub fn new(cfg: HybridTierConfig, topology: &Topology) -> Self {
        assert!(cfg.sample_batch > 0, "sample batch must be positive");
        assert!(cfg.promote_threshold > 0, "threshold must be positive");
        let sketch = CmSketch::new(cfg.sketch_width_log2, cfg.sketch_rows, cfg.seed);
        HybridTier {
            cfg,
            sketch,
            tiers: (0..topology.tier_count())
                .map(|_| IndexedList::default())
                .collect(),
            ticks: 0,
            samples: 0,
            promotions: 0,
            demotions: 0,
            direct_placements: 0,
        }
    }

    /// With default tunables.
    pub fn with_defaults(topology: &Topology) -> Self {
        Self::new(HybridTierConfig::default(), topology)
    }

    /// With a different daemon interval (Fig. 10 sweep).
    pub fn with_interval(topology: &Topology, interval: Nanos) -> Self {
        Self::new(
            HybridTierConfig {
                sample_interval: interval,
                ..Default::default()
            },
            topology,
        )
    }

    /// Total pages promoted.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Pages placed directly in the fast tier because the sketch already
    /// knew them hot at map time.
    pub fn direct_placements(&self) -> u64 {
        self.direct_placements
    }

    /// Read access to the sketch (determinism tests).
    pub fn sketch(&self) -> &CmSketch {
        &self.sketch
    }

    fn ring_mut(&mut self, tier: TierId) -> Option<&mut IndexedList> {
        self.tiers.get_mut(tier.index())
    }

    /// The sketch key for a frame: its virtual page, so frequency history
    /// survives migrations and unmap/remap cycles.
    fn key_of(mem: &MemorySystem, frame: FrameId) -> Option<u64> {
        mem.frame(frame).vpage().map(VPage::raw)
    }

    /// Samples one lower tier: pops up to `sample_batch` pages, harvests
    /// their reference bits, updates the sketch for referenced ones, and
    /// returns (pages sampled, promotion candidates).
    fn sample_tier(&mut self, mem: &mut MemorySystem, tier: TierId) -> (u64, Vec<FrameId>) {
        let mut hot = Vec::new();
        let mut sampled = 0u64;
        let budget = self
            .tiers
            .get(tier.index())
            .map(|l| l.len().min(self.cfg.sample_batch))
            .unwrap_or(0);
        for _ in 0..budget {
            let Some(frame) = self.ring_mut(tier).and_then(IndexedList::pop_front) else {
                break;
            };
            sampled += 1;
            let referenced = mem.harvest_referenced(frame);
            if let Some(list) = self.ring_mut(tier) {
                list.push_back(frame);
            }
            if !referenced {
                continue;
            }
            let Some(key) = Self::key_of(mem, frame) else {
                continue;
            };
            let est = self.sketch.update(key);
            if !tier.is_top() && est >= self.cfg.promote_threshold {
                hot.push(frame);
            }
        }
        (sampled, hot)
    }

    /// Promotes frequency-qualified pages, exchanging with a cold upper
    /// page when the destination is full.
    fn promote_hot(&mut self, mem: &mut MemorySystem, tier: TierId, mut hot: Vec<FrameId>) -> u64 {
        let Some(upper) = tier.upper() else { return 0 };
        let mut promoted = 0;
        // Deterministic fairness when room is scarcer than candidates.
        if !hot.is_empty() {
            let shift = self.ticks as usize % hot.len();
            hot.rotate_left(shift);
        }
        for frame in hot {
            if mem.frame(frame).tier() != tier {
                continue;
            }
            match mem.migrate(frame, upper) {
                Ok(new_frame) => {
                    self.finish_move(frame, new_frame, tier, upper);
                    promoted += 1;
                }
                Err(MemError::TierFull(_)) => {
                    if self.demote_one_cold(mem, upper).is_some() {
                        if let Ok(new_frame) = mem.migrate(frame, upper) {
                            self.finish_move(frame, new_frame, tier, upper);
                            promoted += 1;
                        }
                    }
                }
                Err(_) => {}
            }
        }
        self.promotions += promoted;
        promoted
    }

    fn finish_move(&mut self, old: FrameId, new: FrameId, src: TierId, dst: TierId) {
        if let Some(list) = self.ring_mut(src) {
            list.remove(old);
        }
        if let Some(list) = self.ring_mut(dst) {
            list.push_back(new);
        }
    }

    /// Demotes one low-frequency page of `tier` one tier down.
    fn demote_one_cold(&mut self, mem: &mut MemorySystem, tier: TierId) -> Option<FrameId> {
        let lower = tier.lower(self.tiers.len())?;
        for _ in 0..64 {
            let victim = self.ring_mut(tier).and_then(IndexedList::pop_front)?;
            let hot = Self::key_of(mem, victim)
                .is_some_and(|k| self.sketch.estimate(k) >= self.cfg.promote_threshold);
            if hot || !mem.frame(victim).migratable() {
                if let Some(list) = self.ring_mut(tier) {
                    list.push_back(victim);
                }
                continue;
            }
            match mem.migrate(victim, lower) {
                Ok(new_frame) => {
                    if let Some(list) = self.ring_mut(lower) {
                        list.push_back(new_frame);
                    }
                    self.demotions += 1;
                    return Some(new_frame);
                }
                Err(_) => {
                    if let Some(list) = self.ring_mut(tier) {
                        list.push_back(victim);
                    }
                }
            }
        }
        None
    }
}

impl TieringPolicy for HybridTier {
    fn name(&self) -> &'static str {
        "hybridtier"
    }

    fn traits(&self) -> PolicyTraits {
        PolicyTraits {
            name: "HybridTier",
            page_access_tracking: "Sampled Reference Bit",
            selection_promotion: "Frequency (CM-sketch)",
            selection_demotion: "Frequency (CM-sketch)",
            numa_aware: true,
            space_overhead: false,
            generality: "All",
            key_insight: "Sketch-tracked frequency + direct placement",
        }
    }

    fn on_page_mapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        if let Some(list) = self.ring_mut(tier) {
            list.push_back(frame);
        }
        // Direct placement: the sketch already knows this virtual page's
        // frequency from before it was unmapped/evicted. A known-hot page
        // landing in a lower tier moves up immediately instead of waiting
        // out the sampling ladder again.
        if tier.is_top() {
            return;
        }
        let Some(key) = Self::key_of(mem, frame) else {
            return;
        };
        if self.sketch.estimate(key) < self.cfg.promote_threshold {
            return;
        }
        let Some(upper) = tier.upper() else { return };
        if let Ok(new_frame) = mem.migrate(frame, upper) {
            self.finish_move(frame, new_frame, tier, upper);
            self.direct_placements += 1;
            self.promotions += 1;
        }
    }

    fn on_page_unmapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        if let Some(list) = self.ring_mut(tier) {
            list.remove(frame);
        }
    }

    fn on_supervised_access(&mut self, mem: &mut MemorySystem, frame: FrameId, _kind: AccessKind) {
        // Supervised accesses are kernel-visible for free: feed them to
        // the sketch directly, no sampling needed.
        if let Some(key) = Self::key_of(mem, frame) {
            self.sketch.update(key);
        }
    }

    fn tick(&mut self, mem: &mut MemorySystem, now: Nanos) -> TickOutcome {
        self.ticks += 1;
        if self.cfg.age_ticks > 0 && self.ticks % self.cfg.age_ticks == 0 {
            self.sketch.halve();
        }
        let mut out = TickOutcome::default();
        let tier_count = self.tiers.len();
        let mut hot_by_tier: Vec<(TierId, Vec<FrameId>)> = Vec::new();
        for t in 0..tier_count {
            let tier = TierId::new(t as u8);
            let (sampled, hot) = self.sample_tier(mem, tier);
            self.samples += sampled;
            out.pages_scanned += sampled;
            if !hot.is_empty() {
                hot_by_tier.push((tier, hot));
            }
        }
        for (tier, hot) in hot_by_tier {
            let promoted = self.promote_hot(mem, tier, hot);
            out.promoted += promoted;
            mem.recorder_mut().emit(|| EventKind::Custom {
                tag: "ht_promote_batch",
                a: promoted,
                b: tier.index() as u64,
            });
        }
        for t in 0..tier_count {
            let tier = TierId::new(t as u8);
            if mem.tier_under_pressure(tier) {
                let p = self.on_pressure(mem, tier, now);
                out.pages_scanned += p.pages_scanned;
                out.demoted += p.demoted;
            }
        }
        out
    }

    fn on_pressure(&mut self, mem: &mut MemorySystem, tier: TierId, _now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();
        let mut budget = self.cfg.reclaim_batch;
        let lower = tier.lower(self.tiers.len());
        while !mem.tier_balanced(tier) && budget > 0 {
            let Some(frame) = self.ring_mut(tier).and_then(IndexedList::pop_front) else {
                break;
            };
            budget -= 1;
            out.pages_scanned += 1;
            // Known-hot pages are spared while colder candidates remain.
            let hot = Self::key_of(mem, frame)
                .is_some_and(|k| self.sketch.estimate(k) >= self.cfg.promote_threshold);
            if (hot && budget > 0) || !mem.frame(frame).migratable() {
                if let Some(list) = self.ring_mut(tier) {
                    list.push_back(frame);
                }
                continue;
            }
            match lower {
                Some(lower_tier) => match mem.migrate(frame, lower_tier) {
                    Ok(new_frame) => {
                        if let Some(list) = self.ring_mut(lower_tier) {
                            list.push_back(new_frame);
                        }
                        self.demotions += 1;
                        out.demoted += 1;
                    }
                    Err(_) => {
                        if mem.evict(frame).is_err() {
                            if let Some(list) = self.ring_mut(tier) {
                                list.push_back(frame);
                            }
                        }
                    }
                },
                None => {
                    if mem.evict(frame).is_err() {
                        if let Some(list) = self.ring_mut(tier) {
                            list.push_back(frame);
                        }
                    }
                }
            }
        }
        out
    }

    fn tick_interval(&self) -> Option<Nanos> {
        Some(self.cfg.sample_interval)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("ht_ticks", self.ticks),
            ("ht_samples", self.samples),
            ("ht_sketch_updates", self.sketch.updates()),
            ("ht_promotions", self.promotions),
            ("ht_demotions", self.demotions),
            ("ht_direct_placements", self.direct_placements),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_mem::{MemConfig, PageKind};

    fn setup() -> (MemorySystem, HybridTier) {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let h = HybridTier::with_defaults(mem.topology());
        (mem, h)
    }

    fn map_in_tier(mem: &mut MemorySystem, h: &mut HybridTier, v: u64, tier: TierId) -> FrameId {
        let f = mem.alloc_page_in_tier(PageKind::Anon, tier).unwrap();
        mem.map(VPage::new(v), f).unwrap();
        h.on_page_mapped(mem, f);
        f
    }

    #[test]
    fn promotes_once_frequency_threshold_is_reached() {
        let (mut mem, mut h) = setup();
        let pm = TierId::new(1);
        map_in_tier(&mut mem, &mut h, 1, pm);
        // Each interval: touch, then sample. Threshold 3 => third
        // referenced observation promotes.
        for s in 1..=2u64 {
            mem.access(VPage::new(1), AccessKind::Read).unwrap();
            let out = h.tick(&mut mem, Nanos::from_secs(s));
            assert_eq!(out.promoted, 0, "below threshold at tick {s}");
        }
        mem.access(VPage::new(1), AccessKind::Read).unwrap();
        let out = h.tick(&mut mem, Nanos::from_secs(3));
        assert_eq!(out.promoted, 1);
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
    }

    #[test]
    fn cold_pages_stay_put() {
        let (mut mem, mut h) = setup();
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut h, 1, pm);
        for s in 1..=5u64 {
            h.tick(&mut mem, Nanos::from_secs(s));
        }
        assert_eq!(mem.frame(f).tier(), pm);
        assert_eq!(h.promotions(), 0);
    }

    #[test]
    fn direct_placement_rescues_known_hot_page() {
        let (mut mem, mut h) = setup();
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut h, 7, pm);
        // Build frequency history, then unmap (sketch keeps the history).
        for s in 1..=3u64 {
            mem.access(VPage::new(7), AccessKind::Read).unwrap();
            h.tick(&mut mem, Nanos::from_secs(s));
        }
        let f = mem.translate(VPage::new(7)).unwrap_or(f);
        h.on_page_unmapped(&mut mem, f);
        mem.unmap(VPage::new(7)).unwrap();
        mem.free_page(f).unwrap();
        // Remap in PM: the policy should move it straight up.
        let nf = map_in_tier(&mut mem, &mut h, 7, pm);
        let _ = nf;
        assert!(h.direct_placements() >= 1, "placement used sketch history");
        let cur = mem.translate(VPage::new(7)).unwrap();
        assert_eq!(mem.frame(cur).tier(), TierId::TOP);
    }

    #[test]
    fn sampling_cost_is_bounded_by_batch() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(512, 4096));
        let mut h = HybridTier::new(
            HybridTierConfig {
                sample_batch: 64,
                ..Default::default()
            },
            mem.topology(),
        );
        let mut v = 0u64;
        for _ in 0..2000 {
            map_in_tier(&mut mem, &mut h, v, TierId::new(1));
            v += 1;
        }
        let out = h.tick(&mut mem, Nanos::from_secs(1));
        assert!(
            out.pages_scanned <= 128,
            "sampled {} pages, budget is 64 per tier",
            out.pages_scanned
        );
    }

    #[test]
    fn pressure_demotes_cold_before_hot() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let mut h = HybridTier::with_defaults(mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            h.on_page_mapped(&mut mem, f);
            v += 1;
        }
        // Make page 0 hot in the sketch.
        let f0 = mem.translate(VPage::new(0)).unwrap();
        for _ in 0..5 {
            h.on_supervised_access(&mut mem, f0, AccessKind::Read);
        }
        let out = h.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        assert!(out.demoted > 0);
        assert!(mem.tier_balanced(TierId::TOP));
        let cur = mem.translate(VPage::new(0)).unwrap();
        assert_eq!(mem.frame(cur).tier(), TierId::TOP, "hot page was spared");
    }

    #[test]
    fn runs_on_three_tier_cxl_machine() {
        let mut mem = MemorySystem::new(MemConfig::dram_cxl_pm(32, 64, 256));
        let mut h = HybridTier::with_defaults(mem.topology());
        let bottom = TierId::new(2);
        map_in_tier(&mut mem, &mut h, 1, bottom);
        for s in 1..=3u64 {
            mem.access(VPage::new(1), AccessKind::Read).unwrap();
            h.tick(&mut mem, Nanos::from_secs(s));
        }
        // Promoted one tier per qualifying tick: PM -> CXL at least.
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert!(mem.frame(nf).tier() < bottom, "page moved up");
    }

    #[test]
    fn same_seed_same_behaviour() {
        let run = || {
            let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
            let mut h = HybridTier::with_defaults(mem.topology());
            for v in 0..100u64 {
                map_in_tier(&mut mem, &mut h, v, TierId::new(1));
            }
            for s in 1..=10u64 {
                for v in 0..100u64 {
                    if v % 3 == 0 {
                        mem.access(VPage::new(v), AccessKind::Read).unwrap();
                    }
                }
                h.tick(&mut mem, Nanos::from_secs(s));
            }
            (h.sketch().checksum(), h.promotions(), mem.stats().clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traits_report_sketch_tracking() {
        let (_, h) = setup();
        let t = h.traits();
        assert_eq!(t.page_access_tracking, "Sampled Reference Bit");
        assert!(!t.space_overhead, "sketch is O(1), not per-page");
    }
}
