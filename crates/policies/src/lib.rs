//! # mc-policies — the paper's comparison systems
//!
//! Every system MULTI-CLOCK is evaluated against in the paper (§V),
//! implemented over the same [`mc_mem`] substrate:
//!
//! * [`StaticTiering`] — pages stay in the tier they were born in; reclaim
//!   evicts (never migrates). The normalisation baseline of Figs. 5-7.
//! * [`Nimble`] — the paper's single-threaded re-implementation of
//!   Nimble's *page selection*: recency-only, promotes every page seen
//!   referenced in the last scan interval (§II-D).
//! * [`AutoTiering`] — hint-page-fault tracking in two flavours:
//!   [`AutoTieringMode::Cpm`] (conservative promotion with fault-time page
//!   exchange) and [`AutoTieringMode::Opm`] (opportunistic promotion with
//!   N-bit-history background demotion).
//! * [`MemoryModeCache`] — Intel Memory-mode: DRAM as a direct-mapped
//!   cache in front of PM. Not a [`mc_mem::TieringPolicy`]; the simulation
//!   engine treats it as an alternative memory frontend.
//! * [`Amp`] — AMP's hybrid (recency+frequency+random) selection over
//!   full-memory profiling — deployable only in simulation, exactly the
//!   paper's point (§II-D).
//! * [`AutoNuma`] — AutoNUMA-Tiering (Yang's PM-as-NUMA-node design):
//!   anonymous pages only, fault-based promotion into free space,
//!   reclaim-based demotion.
//! * [`OraclePolicy`] — strict-LRU and LFU ablation policies that observe
//!   every access (impossible in a kernel, §II-D, but a useful selection-
//!   quality upper bound in simulation).
//! * [`HybridTier`] — sketch-based frequency tracking (arXiv 2312.04789):
//!   sampled reference-bit harvesting into a count-min sketch instead of
//!   full PTE scans, plus direct data placement of known-hot pages at
//!   allocation time. The CXL-era comparison point.

pub mod amp;
pub mod autonuma;
pub mod autotiering;
pub mod hybridtier;
pub mod memory_mode;
pub mod nimble;
pub mod oracle;
pub mod sketch;
pub mod static_tiering;

pub use amp::Amp;
pub use autonuma::AutoNuma;
pub use autotiering::{AutoTiering, AutoTieringConfig, AutoTieringMode};
pub use hybridtier::{HybridTier, HybridTierConfig};
pub use memory_mode::{MemoryModeCache, MemoryModeStats};
pub use nimble::{Nimble, NimbleConfig};
pub use oracle::{OracleKind, OraclePolicy};
pub use sketch::CmSketch;
pub use static_tiering::StaticTiering;
