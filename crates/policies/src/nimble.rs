//! The Nimble page-selection baseline.
//!
//! Nimble (Yan et al., ASPLOS'19) optimises the *mechanics* of page
//! migration (multi-threaded copies, two-sided exchange) but reuses the
//! kernel's stock CLOCK page profiling: a page is promotion-worthy if it
//! was *recently referenced* — recency only, no frequency. The MULTI-CLOCK
//! paper isolates that selection mechanism and runs it single-threaded for
//! an apples-to-apples comparison (§II-D); we do the same.
//!
//! Concretely, each scan interval Nimble harvests reference bits over its
//! per-tier active/inactive lists (standard two-list CLOCK transitions:
//! one referenced observation activates a page) and promotes **every
//! lower-tier page seen referenced in this interval**, exchanging with the
//! coldest top-tier pages when DRAM is full. Compared with MULTI-CLOCK
//! this promotes more pages after fewer observations — exactly the
//! behaviour Figs. 8/9 measure (more promotions, lower re-access rate).

use mc_clock::{balance::inactive_is_low, IndexedList};
use mc_mem::{
    AccessKind, FrameId, MemError, MemorySystem, Nanos, PolicyTraits, TickOutcome, TierId,
    TieringPolicy, Topology,
};
use mc_obs::EventKind;

/// Tunables for [`Nimble`]. Defaults mirror the paper's setup for the
/// comparison: 1 s scan interval, 1024-page scan batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NimbleConfig {
    /// Scan daemon period.
    pub scan_interval: Nanos,
    /// Pages examined per list per tick.
    pub scan_batch: usize,
    /// Maximum pages examined per pressure invocation.
    pub reclaim_batch: usize,
}

impl Default for NimbleConfig {
    fn default() -> Self {
        NimbleConfig {
            scan_interval: Nanos::from_secs(1),
            scan_batch: 1024,
            reclaim_batch: 4096,
        }
    }
}

/// Per-tier two-list structure (no promote list — that is MULTI-CLOCK's
/// addition).
#[derive(Debug, Default)]
struct NimbleLists {
    inactive: IndexedList,
    active: IndexedList,
}

/// The Nimble recency-only selection policy.
#[derive(Debug)]
pub struct Nimble {
    cfg: NimbleConfig,
    tiers: Vec<NimbleLists>,
    /// Whether a frame is on an active list (vs inactive).
    active_flag: Vec<bool>,
    ticks: u64,
    promotions: u64,
    demotions: u64,
}

impl Nimble {
    /// Creates a Nimble instance for a topology.
    pub fn new(cfg: NimbleConfig, topology: &Topology) -> Self {
        assert!(cfg.scan_batch > 0, "scan batch must be positive");
        Nimble {
            cfg,
            tiers: (0..topology.tier_count())
                .map(|_| NimbleLists::default())
                .collect(),
            active_flag: vec![false; topology.total_pages()],
            ticks: 0,
            promotions: 0,
            demotions: 0,
        }
    }

    /// With default tunables.
    pub fn with_defaults(topology: &Topology) -> Self {
        Self::new(NimbleConfig::default(), topology)
    }

    /// With a different scan interval (Fig. 10 sweep).
    pub fn with_interval(topology: &Topology, interval: Nanos) -> Self {
        Self::new(
            NimbleConfig {
                scan_interval: interval,
                ..Default::default()
            },
            topology,
        )
    }

    /// Total pages promoted.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Total pages demoted.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    fn untrack(&mut self, frame: FrameId, tier: TierId) {
        self.tiers[tier.index()].inactive.remove(frame);
        self.tiers[tier.index()].active.remove(frame);
        self.active_flag[frame.index()] = false;
    }

    /// Scans one tier's lists, harvesting reference bits; returns
    /// (pages scanned, lower-tier pages seen referenced).
    fn scan_tier(&mut self, mem: &mut MemorySystem, tier: TierId) -> (u64, Vec<FrameId>) {
        let mut hot = Vec::new();
        let mut scanned = 0u64;

        // Inactive list: referenced pages activate (one observation).
        let budget = self.tiers[tier.index()]
            .inactive
            .len()
            .min(self.cfg.scan_batch);
        for _ in 0..budget {
            let Some(frame) = self.tiers[tier.index()].inactive.pop_front() else {
                break;
            };
            scanned += 1;
            if mem.harvest_referenced(frame) {
                self.tiers[tier.index()].active.push_back(frame);
                self.active_flag[frame.index()] = true;
            } else {
                self.tiers[tier.index()].inactive.push_back(frame);
            }
        }

        // Active list: referenced pages rotate to the MRU end and are
        // promotion candidates on lower tiers.
        let budget = self.tiers[tier.index()]
            .active
            .len()
            .min(self.cfg.scan_batch);
        for _ in 0..budget {
            let Some(frame) = self.tiers[tier.index()].active.pop_front() else {
                break;
            };
            scanned += 1;
            self.tiers[tier.index()].active.push_back(frame);
            if mem.harvest_referenced(frame) {
                self.tiers[tier.index()].active.move_to_back(frame);
                if !tier.is_top() {
                    hot.push(frame);
                }
            }
        }
        (scanned, hot)
    }

    /// Promotes a batch of hot lower-tier pages, exchanging with the
    /// coldest top-tier pages when the destination is full (Nimble's
    /// two-sided exchange, single-threaded).
    fn promote_hot(&mut self, mem: &mut MemorySystem, tier: TierId, mut hot: Vec<FrameId>) -> u64 {
        let Some(upper) = tier.upper() else { return 0 };
        let mut promoted = 0;
        // Deterministic fairness when room is scarcer than candidates
        // (see the same rotation in MULTI-CLOCK's promote phase).
        if !hot.is_empty() {
            let shift = self.ticks as usize % hot.len();
            hot.rotate_left(shift);
        }
        for frame in hot {
            // The page may have been migrated/freed since scanning.
            if mem.frame(frame).tier() != tier {
                continue;
            }
            match mem.migrate(frame, upper) {
                Ok(new_frame) => {
                    self.finish_promotion(mem, frame, new_frame, tier, upper);
                    promoted += 1;
                }
                Err(MemError::TierFull(_)) => {
                    // Exchange: demote the coldest upper-tier page first.
                    if self.demote_one_cold(mem, upper).is_some() {
                        if let Ok(new_frame) = mem.migrate(frame, upper) {
                            self.finish_promotion(mem, frame, new_frame, tier, upper);
                            promoted += 1;
                        }
                    }
                }
                Err(_) => {}
            }
        }
        promoted
    }

    fn finish_promotion(
        &mut self,
        mem: &mut MemorySystem,
        old: FrameId,
        new: FrameId,
        src: TierId,
        dst: TierId,
    ) {
        let _ = mem;
        self.untrack(old, src);
        self.tiers[dst.index()].active.push_back(new);
        self.active_flag[new.index()] = true;
        self.promotions += 1;
    }

    /// Demotes the coldest page of `tier` one tier down; returns the new
    /// frame on success.
    fn demote_one_cold(&mut self, mem: &mut MemorySystem, tier: TierId) -> Option<FrameId> {
        let lower = tier.lower(self.tiers.len())?;
        // Victims come from the inactive list only: those pages were
        // observed unreferenced at the last scan. Taking active (recently
        // referenced) pages would strip the hot set to make room for
        // single-observation candidates.
        for _ in 0..64 {
            let victim = self.tiers[tier.index()].inactive.pop_front()?;
            if mem.harvest_referenced(victim) || !mem.frame(victim).migratable() {
                self.tiers[tier.index()].inactive.push_back(victim);
                self.active_flag[victim.index()] = false;
                continue;
            }
            match mem.migrate(victim, lower) {
                Ok(new_frame) => {
                    self.active_flag[victim.index()] = false;
                    self.tiers[lower.index()].inactive.push_back(new_frame);
                    self.demotions += 1;
                    return Some(new_frame);
                }
                Err(_) => {
                    self.tiers[tier.index()].inactive.push_back(victim);
                }
            }
        }
        None
    }
}

impl TieringPolicy for Nimble {
    fn name(&self) -> &'static str {
        "nimble"
    }

    fn traits(&self) -> PolicyTraits {
        PolicyTraits {
            name: "Nimble",
            page_access_tracking: "Reference Bit",
            selection_promotion: "Recency",
            selection_demotion: "Recency",
            numa_aware: false,
            space_overhead: false,
            generality: "All",
            key_insight: "Optimize huge page migrations",
        }
    }

    fn on_page_mapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.tiers[tier.index()].inactive.push_back(frame);
        self.active_flag[frame.index()] = false;
    }

    fn on_page_unmapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.untrack(frame, tier);
    }

    fn on_supervised_access(&mut self, mem: &mut MemorySystem, frame: FrameId, _kind: AccessKind) {
        // Stock CLOCK behaviour: one observation activates.
        let tier = mem.frame(frame).tier();
        if !self.active_flag[frame.index()] && self.tiers[tier.index()].inactive.remove(frame) {
            self.tiers[tier.index()].active.push_back(frame);
            self.active_flag[frame.index()] = true;
        } else {
            self.tiers[tier.index()].active.move_to_back(frame);
        }
    }

    fn tick(&mut self, mem: &mut MemorySystem, _now: Nanos) -> TickOutcome {
        self.ticks += 1;
        let mut out = TickOutcome::default();
        let tier_count = self.tiers.len();
        let mut hot_by_tier: Vec<(TierId, Vec<FrameId>)> = Vec::new();
        for t in 0..tier_count {
            let tier = TierId::new(t as u8);
            let (scanned, hot) = self.scan_tier(mem, tier);
            out.pages_scanned += scanned;
            if !hot.is_empty() {
                hot_by_tier.push((tier, hot));
            }
        }
        for (tier, hot) in hot_by_tier {
            let promoted = self.promote_hot(mem, tier, hot);
            out.promoted += promoted;
            mem.recorder_mut().emit(|| EventKind::Custom {
                tag: "nimble_promote_batch",
                a: promoted,
                b: tier.index() as u64,
            });
        }
        for t in 0..tier_count {
            let tier = TierId::new(t as u8);
            if mem.tier_under_pressure(tier) {
                let p = self.on_pressure(mem, tier, _now);
                out.pages_scanned += p.pages_scanned;
                out.demoted += p.demoted;
            }
        }
        out
    }

    fn on_pressure(&mut self, mem: &mut MemorySystem, tier: TierId, _now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();
        let mut budget = self.cfg.reclaim_batch;
        let tier_pages = mem.topology().tier(tier).pages();
        let lower = tier.lower(self.tiers.len());

        while !mem.tier_balanced(tier) && budget > 0 {
            // Keep the inactive list fed.
            let lists = &self.tiers[tier.index()];
            if inactive_is_low(lists.active.len(), lists.inactive.len(), tier_pages)
                || lists.inactive.is_empty()
            {
                if let Some(frame) = self.tiers[tier.index()].active.pop_front() {
                    budget -= 1;
                    out.pages_scanned += 1;
                    if mem.harvest_referenced(frame) {
                        self.tiers[tier.index()].active.push_back(frame);
                    } else {
                        self.tiers[tier.index()].inactive.push_back(frame);
                        self.active_flag[frame.index()] = false;
                    }
                    continue;
                }
            }
            let Some(frame) = self.tiers[tier.index()].inactive.pop_front() else {
                break;
            };
            budget -= 1;
            out.pages_scanned += 1;
            if mem.harvest_referenced(frame) {
                self.tiers[tier.index()].active.push_back(frame);
                self.active_flag[frame.index()] = true;
                continue;
            }
            if !mem.frame(frame).migratable() {
                self.tiers[tier.index()].inactive.push_back(frame);
                continue;
            }
            match lower {
                Some(lower_tier) => match mem.migrate(frame, lower_tier) {
                    Ok(new_frame) => {
                        self.tiers[lower_tier.index()].inactive.push_back(new_frame);
                        self.demotions += 1;
                        out.demoted += 1;
                    }
                    Err(_) => {
                        if mem.evict(frame).is_err() {
                            self.tiers[tier.index()].inactive.push_back(frame);
                        }
                    }
                },
                None => {
                    if mem.evict(frame).is_err() {
                        self.tiers[tier.index()].inactive.push_back(frame);
                    }
                }
            }
        }
        out
    }

    fn tick_interval(&self) -> Option<Nanos> {
        Some(self.cfg.scan_interval)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("nimble_ticks", self.ticks),
            ("nimble_promotions", self.promotions),
            ("nimble_demotions", self.demotions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_mem::{MemConfig, PageKind, VPage};

    fn setup() -> (MemorySystem, Nimble) {
        let mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let n = Nimble::with_defaults(mem.topology());
        (mem, n)
    }

    fn map_in_tier(mem: &mut MemorySystem, n: &mut Nimble, v: u64, tier: TierId) -> FrameId {
        let f = mem.alloc_page_in_tier(PageKind::Anon, tier).unwrap();
        mem.map(VPage::new(v), f).unwrap();
        n.on_page_mapped(mem, f);
        f
    }

    #[test]
    fn promotes_after_two_observations() {
        // The key contrast with MULTI-CLOCK's four-rung ladder: a page
        // referenced while on the active list (two observations total) is
        // already a promotion candidate.
        let (mut mem, mut n) = setup();
        let pm = TierId::new(1);
        map_in_tier(&mut mem, &mut n, 1, pm);
        mem.access(VPage::new(1), AccessKind::Read).unwrap();
        let out = n.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(out.promoted, 0, "first observation only activates");
        mem.access(VPage::new(1), AccessKind::Read).unwrap();
        let out = n.tick(&mut mem, Nanos::from_secs(2));
        assert_eq!(out.promoted, 1, "second observation promotes");
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
    }

    #[test]
    fn promotes_more_pages_than_multi_clock_on_same_workload() {
        // Fig. 8's shape: identical access pattern, Nimble promotes more.
        let mk_mem = || MemorySystem::new(MemConfig::two_tier(512, 1024));
        let pm = TierId::new(1);

        // Pages accessed exactly twice, one interval apart: Nimble
        // promotes them; MULTI-CLOCK (4-step ladder) does not.
        let mut mem_n = mk_mem();
        let mut nim = Nimble::with_defaults(mem_n.topology());
        for v in 0..50u64 {
            map_in_tier(&mut mem_n, &mut nim, v, pm);
        }
        let mut mem_mc = mk_mem();
        let mut mc = multi_clock::MultiClock::new(Default::default(), mem_mc.topology());
        for v in 0..50u64 {
            let f = mem_mc.alloc_page_in_tier(PageKind::Anon, pm).unwrap();
            mem_mc.map(VPage::new(v), f).unwrap();
            mc.on_page_mapped(&mut mem_mc, f);
        }
        for interval in 1..=2u64 {
            for v in 0..50u64 {
                mem_n.access(VPage::new(v), AccessKind::Read).unwrap();
                mem_mc.access(VPage::new(v), AccessKind::Read).unwrap();
            }
            nim.tick(&mut mem_n, Nanos::from_secs(interval));
            mc.tick(&mut mem_mc, Nanos::from_secs(interval));
        }
        assert_eq!(mem_n.stats().promotions, 50, "Nimble promoted everything");
        assert_eq!(mem_mc.stats().promotions, 0, "MULTI-CLOCK held back");
    }

    #[test]
    fn exchange_demotes_cold_dram_page_when_full() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(32, 128));
        let mut n = Nimble::with_defaults(mem.topology());
        // Fill DRAM with cold pages.
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            n.on_page_mapped(&mut mem, f);
            v += 1;
        }
        // One hot PM page (touched across two intervals to qualify).
        let hot_v = 1000u64;
        map_in_tier(&mut mem, &mut n, hot_v, TierId::new(1));
        mem.access(VPage::new(hot_v), AccessKind::Read).unwrap();
        n.tick(&mut mem, Nanos::from_secs(1));
        mem.access(VPage::new(hot_v), AccessKind::Read).unwrap();
        let out = n.tick(&mut mem, Nanos::from_secs(2));
        assert_eq!(out.promoted, 1, "exchange made room");
        assert!(n.demotions() >= 1, "a cold DRAM page was demoted");
        let nf = mem.translate(VPage::new(hot_v)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
    }

    #[test]
    fn cold_pages_not_promoted() {
        let (mut mem, mut n) = setup();
        let pm = TierId::new(1);
        let f = map_in_tier(&mut mem, &mut n, 1, pm);
        for s in 1..=5u64 {
            n.tick(&mut mem, Nanos::from_secs(s));
        }
        assert_eq!(mem.frame(f).tier(), pm);
        assert_eq!(n.promotions(), 0);
    }

    #[test]
    fn pressure_demotes_then_evicts() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 32));
        let mut n = Nimble::with_defaults(mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page(PageKind::Anon) {
            mem.map(VPage::new(v), f).unwrap();
            n.on_page_mapped(&mut mem, f);
            v += 1;
        }
        let out = n.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        assert!(out.demoted > 0 || mem.stats().evictions > 0);
        assert!(mem.tier_balanced(TierId::TOP));
    }

    #[test]
    fn traits_match_table_one() {
        let (_, n) = setup();
        let t = n.traits();
        assert_eq!(t.selection_promotion, "Recency");
        assert!(!t.numa_aware);
    }
}
