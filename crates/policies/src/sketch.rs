//! Count-min sketch: sub-linear frequency tracking for HybridTier.
//!
//! HybridTier (arXiv 2312.04789) replaces full PTE scans with lightweight
//! probabilistic frequency counters: a count-min sketch maps every tracked
//! page to one saturating counter per row through seeded hashes, so hotness
//! estimation costs O(rows) per observation and O(width x rows) memory
//! regardless of machine size — no per-page metadata. Estimates only ever
//! over-count (hash collisions add, never subtract), which biases toward
//! promotion, the cheap direction to correct.
//!
//! Hashing is seed-deterministic in the house style: each row derives its
//! hash from an [`mc_fault::SplitMix64`] stream keyed by `seed ^ row`, so
//! the same seed reproduces the same counters bit-for-bit on every run.

use mc_fault::SplitMix64;

/// A count-min sketch over `u64` keys with saturating `u32` counters.
#[derive(Debug, Clone)]
pub struct CmSketch {
    /// `rows * width` counters, row-major.
    counters: Vec<u32>,
    /// Power-of-two row width.
    width: usize,
    rows: usize,
    /// Per-row hash seeds, fixed at construction.
    row_seeds: Vec<u64>,
    /// Total observations fed in (saturating).
    updates: u64,
}

impl CmSketch {
    /// Creates a sketch with `1 << width_log2` counters per row.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or `width_log2` exceeds 24 (a 16M-counter
    /// row is past any sensible configuration).
    pub fn new(width_log2: u32, rows: usize, seed: u64) -> Self {
        assert!(rows > 0, "sketch needs at least one row");
        assert!(width_log2 <= 24, "sketch row width is unreasonably large");
        let width = 1usize << width_log2;
        let row_seeds = (0..rows as u64)
            .map(|r| SplitMix64::new(seed ^ r).next_u64())
            .collect();
        CmSketch {
            counters: vec![0; rows * width],
            width,
            rows,
            row_seeds,
            updates: 0,
        }
    }

    /// Row width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total observations recorded.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The counter slot for `key` in `row`.
    fn slot(&self, row: usize, key: u64) -> usize {
        // One SplitMix64 scramble of (row seed, key) is a full-avalanche
        // hash; masking keeps it in the power-of-two row.
        let seed = self.row_seeds.get(row).copied().unwrap_or(0);
        let h = SplitMix64::new(seed ^ key).next_u64();
        row * self.width + (h as usize & (self.width - 1))
    }

    /// Records one observation of `key` and returns the updated estimate.
    ///
    /// Conservative update: only the rows currently at the minimum are
    /// incremented, which tightens over-counting under collisions without
    /// extra state.
    pub fn update(&mut self, key: u64) -> u32 {
        self.updates = self.updates.saturating_add(1);
        let mut min = u32::MAX;
        for row in 0..self.rows {
            let slot = self.slot(row, key);
            let v = self.counters.get(slot).copied().unwrap_or(u32::MAX);
            if v < min {
                min = v;
            }
        }
        let next = min.saturating_add(1);
        for row in 0..self.rows {
            let slot = self.slot(row, key);
            if let Some(c) = self.counters.get_mut(slot) {
                if *c < next {
                    *c = next;
                }
            }
        }
        next
    }

    /// The frequency estimate for `key`: the minimum over its row counters.
    pub fn estimate(&self, key: u64) -> u32 {
        let mut min = u32::MAX;
        for row in 0..self.rows {
            let v = self
                .counters
                .get(self.slot(row, key))
                .copied()
                .unwrap_or(u32::MAX);
            if v < min {
                min = v;
            }
        }
        min
    }

    /// Ages every counter by halving it — the periodic decay that keeps
    /// estimates tracking the *current* access frequency instead of the
    /// all-time count.
    pub fn halve(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
    }

    /// A fingerprint of the full counter state, for determinism tests.
    pub fn checksum(&self) -> u64 {
        let mut h = SplitMix64::new(0x5ce7_c0de);
        let mut acc = 0u64;
        for &c in &self.counters {
            acc = acc.wrapping_add(h.next_u64().wrapping_mul(u64::from(c) + 1));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_never_undercounts() {
        let mut s = CmSketch::new(8, 4, 42);
        for k in 0..500u64 {
            for _ in 0..(k % 7) {
                s.update(k);
            }
        }
        for k in 0..500u64 {
            assert!(u64::from(s.estimate(k)) >= k % 7, "undercount for {k}");
        }
    }

    #[test]
    fn same_seed_same_counters() {
        let mut a = CmSketch::new(10, 4, 7);
        let mut b = CmSketch::new(10, 4, 7);
        for k in 0..10_000u64 {
            a.update(k.wrapping_mul(0x9E37_79B9));
            b.update(k.wrapping_mul(0x9E37_79B9));
        }
        assert_eq!(a.checksum(), b.checksum());
        assert_eq!(a.updates(), b.updates());
    }

    #[test]
    fn different_seeds_hash_differently() {
        let mut a = CmSketch::new(10, 4, 1);
        let mut b = CmSketch::new(10, 4, 2);
        for k in 0..1_000u64 {
            a.update(k);
            b.update(k);
        }
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn halving_ages_estimates() {
        let mut s = CmSketch::new(8, 4, 42);
        for _ in 0..8 {
            s.update(99);
        }
        assert_eq!(s.estimate(99), 8);
        s.halve();
        assert_eq!(s.estimate(99), 4);
        s.halve();
        s.halve();
        assert_eq!(s.estimate(99), 1);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut s = CmSketch::new(2, 1, 42);
        for c in &mut s.counters {
            *c = u32::MAX - 1;
        }
        let est = s.update(1);
        assert_eq!(est, u32::MAX);
        assert_eq!(s.update(1), u32::MAX, "stays saturated");
    }

    #[test]
    fn update_returns_live_estimate() {
        let mut s = CmSketch::new(8, 4, 42);
        assert_eq!(s.update(5), 1);
        assert_eq!(s.update(5), 2);
        assert_eq!(s.estimate(5), 2);
        assert_eq!(s.estimate(6), 0);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        let _ = CmSketch::new(8, 0, 42);
    }
}
