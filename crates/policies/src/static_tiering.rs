//! Static tiering: the normalisation baseline.
//!
//! "A memory page, once mapped to a tier, may not get reassigned to a
//! different tier during its lifetime" (§II-D). Allocation is DRAM-first
//! (the substrate already does that); there is no promotion and no
//! demotion. Under memory pressure a tier reclaims with plain CLOCK
//! second-chance *eviction* — pages leave to backing storage, never to
//! another tier, like a stock non-tiering kernel.

use mc_clock::IndexedList;
use mc_mem::{
    AccessKind, FrameId, MemorySystem, Nanos, PolicyTraits, TickOutcome, TierId, TieringPolicy,
    Topology,
};

/// The static tiering baseline policy.
#[derive(Debug)]
pub struct StaticTiering {
    /// One reclaim list per tier (CLOCK order, front = next candidate).
    lists: Vec<IndexedList>,
    /// Pages evicted by this policy.
    evictions: u64,
}

impl StaticTiering {
    /// Creates the policy for a topology.
    pub fn new(topology: &Topology) -> Self {
        StaticTiering {
            lists: (0..topology.tier_count())
                .map(|_| IndexedList::new())
                .collect(),
            evictions: 0,
        }
    }

    /// Pages evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The reclaim list of one tier (for tests).
    pub fn list(&self, tier: TierId) -> &IndexedList {
        &self.lists[tier.index()]
    }
}

impl TieringPolicy for StaticTiering {
    fn name(&self) -> &'static str {
        "static"
    }

    fn traits(&self) -> PolicyTraits {
        PolicyTraits {
            name: "Static-Tiering",
            page_access_tracking: "N/A",
            selection_promotion: "N/A",
            selection_demotion: "N/A",
            numa_aware: true,
            space_overhead: false,
            generality: "All",
            key_insight: "Straight forward",
        }
    }

    fn on_page_mapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.lists[tier.index()].push_back(frame);
    }

    fn on_page_unmapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.lists[tier.index()].remove(frame);
    }

    fn on_supervised_access(
        &mut self,
        _mem: &mut MemorySystem,
        _frame: FrameId,
        _kind: AccessKind,
    ) {
        // Reference bits in the PTE are enough; nothing to do eagerly.
    }

    fn tick(&mut self, _mem: &mut MemorySystem, _now: Nanos) -> TickOutcome {
        TickOutcome::default()
    }

    fn on_pressure(&mut self, mem: &mut MemorySystem, tier: TierId, _now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();
        let mut budget = 4096usize;
        while !mem.tier_balanced(tier) && budget > 0 {
            let Some(frame) = self.lists[tier.index()].pop_front() else {
                break;
            };
            budget -= 1;
            out.pages_scanned += 1;
            if mem.harvest_referenced(frame) || !mem.frame(frame).migratable() {
                // Second chance.
                self.lists[tier.index()].push_back(frame);
                continue;
            }
            match mem.evict(frame) {
                Ok(()) => {
                    self.evictions += 1;
                }
                Err(_) => self.lists[tier.index()].push_back(frame),
            }
        }
        out
    }

    fn tick_interval(&self) -> Option<Nanos> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_mem::{MemConfig, PageKind, VPage};

    #[test]
    fn never_migrates() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let mut p = StaticTiering::new(mem.topology());
        let mut v = 0u64;
        let mut frames = Vec::new();
        while let Ok(f) = mem.alloc_page(PageKind::Anon) {
            mem.map(VPage::new(v), f).unwrap();
            p.on_page_mapped(&mut mem, f);
            frames.push((v, f, mem.frame(f).tier()));
            v += 1;
        }
        // Touch everything, run many ticks: nothing moves.
        for (v, _, _) in &frames {
            mem.access(VPage::new(*v), AccessKind::Read).unwrap();
        }
        for s in 1..=5 {
            p.tick(&mut mem, Nanos::from_secs(s));
        }
        assert_eq!(mem.stats().promotions, 0);
        assert_eq!(mem.stats().demotions, 0);
        for (v, _, tier) in &frames {
            let nf = mem.translate(VPage::new(*v)).unwrap();
            assert_eq!(mem.frame(nf).tier(), *tier, "page {v} must not move");
        }
    }

    #[test]
    fn pressure_evicts_within_tier() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let mut p = StaticTiering::new(mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            p.on_page_mapped(&mut mem, f);
            v += 1;
        }
        assert!(mem.tier_under_pressure(TierId::TOP));
        p.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        assert!(p.evictions() > 0, "static reclaim evicts");
        assert_eq!(mem.stats().demotions, 0, "never demotes");
        assert!(mem.tier_balanced(TierId::TOP));
    }

    #[test]
    fn second_chance_prefers_unreferenced_victims() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let mut p = StaticTiering::new(mem.topology());
        let mut pages = Vec::new();
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            p.on_page_mapped(&mut mem, f);
            pages.push(v);
            v += 1;
        }
        // Reference the first half.
        let half = pages.len() / 2;
        for pv in &pages[..half] {
            mem.access(VPage::new(*pv), AccessKind::Read).unwrap();
        }
        p.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        let referenced_evicted = pages[..half]
            .iter()
            .filter(|pv| mem.is_swapped(VPage::new(**pv)))
            .count();
        let cold_evicted = pages[half..]
            .iter()
            .filter(|pv| mem.is_swapped(VPage::new(**pv)))
            .count();
        assert!(cold_evicted > referenced_evicted);
    }

    #[test]
    fn traits_match_table_one() {
        let mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let p = StaticTiering::new(mem.topology());
        let t = p.traits();
        assert_eq!(t.name, "Static-Tiering");
        assert_eq!(t.selection_promotion, "N/A");
        assert_eq!(p.tick_interval(), None);
    }
}
