//! Intel Optane Memory-mode: DRAM as a direct-mapped cache in front of PM.
//!
//! "DRAM is directly mapped as the cache for data stored in PM and used as
//! the last level cache ... The system recognizes only the PM as memory"
//! (§II-B). There is no OS tiering at all: every page lives in PM, and the
//! memory controller transparently caches pages in DRAM. The DRAM capacity
//! is invisible to the OS — the paper's chief criticism.
//!
//! This is modelled at page granularity: the cache has one slot per DRAM
//! page, indexed by `vpage % slots` (direct-mapped). A hit costs DRAM
//! latency; a miss costs PM latency plus a background fill (and writeback
//! of a dirty victim).

use mc_mem::{AccessKind, LatencyModel, Nanos, TierId, VPage};
use serde::{Deserialize, Serialize};

/// Hit/miss counters for the memory-side cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModeStats {
    /// Accesses served from the DRAM cache.
    pub hits: u64,
    /// Accesses that missed to PM.
    pub misses: u64,
    /// Dirty victims written back to PM on replacement.
    pub writebacks: u64,
}

impl MemoryModeStats {
    /// The hit ratio in [0, 1]; zero when no access has happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache slot.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    tag: Option<VPage>,
    dirty: bool,
}

/// A direct-mapped, page-granular memory-side DRAM cache.
#[derive(Debug, Clone)]
pub struct MemoryModeCache {
    slots: Vec<Slot>,
    stats: MemoryModeStats,
}

impl MemoryModeCache {
    /// Creates a cache with one slot per DRAM page.
    ///
    /// # Panics
    ///
    /// Panics if `dram_pages` is zero.
    pub fn new(dram_pages: usize) -> Self {
        assert!(dram_pages > 0, "memory-mode needs a DRAM cache");
        MemoryModeCache {
            slots: vec![Slot::default(); dram_pages],
            stats: MemoryModeStats::default(),
        }
    }

    /// Number of cache slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Counters.
    pub fn stats(&self) -> MemoryModeStats {
        self.stats
    }

    /// Whether a page is currently cached.
    pub fn contains(&self, vpage: VPage) -> bool {
        let slot = (vpage.raw() as usize) % self.slots.len();
        self.slots[slot].tag == Some(vpage)
    }

    /// Performs one access; returns `(application latency, background
    /// time)` where background time covers fills and writebacks absorbed
    /// by the memory controller.
    ///
    /// The PM tier is assumed to be the last tier of `latency`.
    pub fn access(
        &mut self,
        vpage: VPage,
        kind: AccessKind,
        latency: &LatencyModel,
    ) -> (Nanos, Nanos) {
        let dram = TierId::TOP;
        let pm = TierId::new((latency.tier_count() - 1) as u8);
        let slot_idx = (vpage.raw() as usize) % self.slots.len();
        // lint: allow(indexing) - slot_idx is reduced modulo slots.len()
        let slot = &mut self.slots[slot_idx];
        if slot.tag == Some(vpage) {
            self.stats.hits += 1;
            if kind.is_write() {
                slot.dirty = true;
            }
            (latency.access(dram, kind), Nanos::ZERO)
        } else {
            self.stats.misses += 1;
            let mut background = Nanos::ZERO;
            if slot.tag.is_some() && slot.dirty {
                self.stats.writebacks += 1;
                background += latency.stream(pm, AccessKind::Write, mc_mem::PAGE_SIZE);
            }
            // Fill the line from PM into DRAM.
            background += latency.stream(pm, AccessKind::Read, mc_mem::PAGE_SIZE);
            slot.tag = Some(vpage);
            slot.dirty = kind.is_write();
            // A miss first probes the DRAM cache (tag check), then goes
            // to PM — memory-mode misses cost *more* than raw PM access.
            let probe = latency.access(TierId::TOP, AccessKind::Read);
            (probe + latency.access(pm, kind), background)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        LatencyModel::dram_pm()
    }

    #[test]
    fn hit_after_fill() {
        let m = model();
        let mut c = MemoryModeCache::new(4);
        let (lat_miss, bg) = c.access(VPage::new(1), AccessKind::Read, &m);
        assert!(bg > Nanos::ZERO, "miss fills from PM");
        let (lat_hit, bg2) = c.access(VPage::new(1), AccessKind::Read, &m);
        assert_eq!(bg2, Nanos::ZERO);
        assert!(lat_hit < lat_miss, "hits are DRAM-fast");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!(c.contains(VPage::new(1)));
    }

    #[test]
    fn direct_mapping_conflicts() {
        let m = model();
        let mut c = MemoryModeCache::new(4);
        // Pages 1 and 5 collide in a 4-slot cache.
        c.access(VPage::new(1), AccessKind::Read, &m);
        c.access(VPage::new(5), AccessKind::Read, &m);
        assert!(!c.contains(VPage::new(1)), "victim evicted");
        assert!(c.contains(VPage::new(5)));
        c.access(VPage::new(1), AccessKind::Read, &m);
        assert_eq!(c.stats().misses, 3, "ping-pong misses");
    }

    #[test]
    fn dirty_victims_write_back() {
        let m = model();
        let mut c = MemoryModeCache::new(4);
        c.access(VPage::new(1), AccessKind::Write, &m);
        let (_, bg) = c.access(VPage::new(5), AccessKind::Read, &m);
        assert_eq!(c.stats().writebacks, 1);
        // Writeback + fill is more background work than fill alone.
        let mut c2 = MemoryModeCache::new(4);
        c2.access(VPage::new(1), AccessKind::Read, &m);
        let (_, bg_clean) = c2.access(VPage::new(5), AccessKind::Read, &m);
        assert!(bg > bg_clean);
    }

    #[test]
    fn hit_ratio_reporting() {
        let m = model();
        let mut c = MemoryModeCache::new(8);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.access(VPage::new(1), AccessKind::Read, &m);
        c.access(VPage::new(1), AccessKind::Read, &m);
        c.access(VPage::new(1), AccessKind::Read, &m);
        c.access(VPage::new(1), AccessKind::Read, &m);
        assert_eq!(c.stats().hit_ratio(), 0.75);
    }

    #[test]
    #[should_panic(expected = "DRAM cache")]
    fn zero_slots_rejected() {
        let _ = MemoryModeCache::new(0);
    }
}
