//! AMP (Table I row): hybrid page selection over full-memory profiling.
//!
//! AMP proposes tiered-memory page selection built from classic cache
//! replacement policies — LRU, LFU and random — combined into a hybrid
//! score. The MULTI-CLOCK paper could not deploy it on real hardware
//! (§II-D): AMP's "core design principle requires it to scan and profile
//! all the memory pages from both DRAM and PM tier, which is impractical
//! in the kernel ... as the number of in-memory pages can grow to
//! hundreds of millions". In simulation the full-memory scan is possible,
//! which makes this implementation useful for exactly one thing the
//! paper argues qualitatively: comparing AMP's *selection quality* while
//! its `pages_scanned` output exposes the full-scan cost that made it
//! undeployable.
//!
//! Per tick AMP scans **every** tracked page (charged to the daemon),
//! harvesting reference bits into an 8-bit recency history and a decayed
//! frequency counter, then promotes the top-scoring lower-tier pages —
//! `score = recency_history + frequency + jitter` — demoting the
//! bottom-scoring upper-tier pages to make room.

use mc_clock::IndexedList;
use mc_mem::{
    AccessKind, FrameId, MemError, MemorySystem, Nanos, PolicyTraits, TickOutcome, TierId,
    TieringPolicy, Topology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The AMP hybrid-selection baseline.
#[derive(Debug)]
pub struct Amp {
    rings: Vec<IndexedList>,
    /// 8-bit reference history per frame (bit 0 = last interval).
    history: Vec<u8>,
    /// Decayed access-frequency estimate per frame.
    freq: Vec<u32>,
    /// Pages promoted per tick.
    batch: usize,
    interval: Nanos,
    rng: StdRng,
    promotions: u64,
}

impl Amp {
    /// Creates an AMP instance.
    pub fn new(topology: &Topology, interval: Nanos, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch must be positive");
        Amp {
            rings: (0..topology.tier_count())
                .map(|_| IndexedList::new())
                .collect(),
            history: vec![0; topology.total_pages()],
            freq: vec![0; topology.total_pages()],
            batch,
            interval,
            rng: StdRng::seed_from_u64(seed),
            promotions: 0,
        }
    }

    /// Defaults mirroring the other baselines.
    pub fn with_defaults(topology: &Topology) -> Self {
        Self::new(topology, Nanos::from_secs(1), 1024, 42)
    }

    /// Pages promoted so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// The hybrid score of a frame (higher = hotter). The random term
    /// breaks ties, mirroring AMP's random component.
    fn score(&mut self, frame: FrameId) -> u32 {
        // Recency component: the history popcount, weighted so that
        // recent-interval bits dominate (bit 0 = last interval).
        let h = self.history[frame.index()];
        let recency = h.count_ones() * 8;
        let jitter: u32 = self.rng.gen_range(0..4);
        recency + self.freq[frame.index()].min(200) + jitter
    }

    fn transfer(&mut self, old: FrameId, new: FrameId) {
        self.history[new.index()] = self.history[old.index()];
        self.freq[new.index()] = self.freq[old.index()];
        self.history[old.index()] = 0;
        self.freq[old.index()] = 0;
    }

    /// Full-memory profiling pass: harvest every tracked page's reference
    /// bit (this is the cost that made AMP undeployable at kernel scale).
    fn profile(&mut self, mem: &mut MemorySystem) -> u64 {
        let mut scanned = 0;
        for ring in &self.rings {
            let frames: Vec<FrameId> = ring.iter().collect();
            for frame in frames {
                scanned += 1;
                let referenced = mem.harvest_referenced(frame);
                let h = &mut self.history[frame.index()];
                *h = (*h << 1) | u8::from(referenced);
                let f = &mut self.freq[frame.index()];
                *f = *f / 2 + u32::from(referenced) * 8;
            }
        }
        scanned
    }
}

impl TieringPolicy for Amp {
    fn name(&self) -> &'static str {
        "amp"
    }

    fn traits(&self) -> PolicyTraits {
        PolicyTraits {
            name: "AMP",
            page_access_tracking: "Reference Bit",
            selection_promotion: "Recency+Frequency+Random",
            selection_demotion: "Recency",
            numa_aware: false,
            space_overhead: true,
            generality: "All",
            key_insight: "Hybrid page selection",
        }
    }

    fn on_page_mapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.rings[tier.index()].push_back(frame);
        self.history[frame.index()] = 0;
        self.freq[frame.index()] = 0;
    }

    fn on_page_unmapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.rings[tier.index()].remove(frame);
        self.history[frame.index()] = 0;
        self.freq[frame.index()] = 0;
    }

    fn on_supervised_access(&mut self, _: &mut MemorySystem, _: FrameId, _: AccessKind) {}

    fn tick(&mut self, mem: &mut MemorySystem, now: Nanos) -> TickOutcome {
        let mut out = TickOutcome {
            pages_scanned: self.profile(mem),
            ..Default::default()
        };

        // Promote the best lower-tier pages, demoting the worst upper-tier
        // pages to make room. Victim candidates are scored *once* per
        // tick (coldest first) so the exchange loop stays O(n log n).
        for t in (1..self.rings.len()).rev() {
            let tier = TierId::new(t as u8);
            let Some(upper) = tier.upper() else {
                continue; // t >= 1: never the top tier
            };
            // lint: allow(indexing) - t ranges over 1..rings.len()
            let mut scored: Vec<(u32, FrameId)> = self.rings[t]
                .iter()
                .collect::<Vec<_>>()
                .into_iter()
                .map(|f| (0, f))
                .collect();
            for e in scored.iter_mut() {
                e.0 = self.score(e.1);
            }
            scored.sort_by_key(|(s, f)| (std::cmp::Reverse(*s), f.raw()));

            let mut victims: Vec<(u32, FrameId)> = self.rings[upper.index()]
                .iter()
                .collect::<Vec<_>>()
                .into_iter()
                .map(|f| (0, f))
                .collect();
            for e in victims.iter_mut() {
                e.0 = self.score(e.1);
            }
            // Coldest last, so pop() yields the next victim.
            victims.sort_by_key(|(s, f)| (std::cmp::Reverse(*s), f.raw()));

            for (score, frame) in scored.into_iter().take(self.batch) {
                if score == 0 || !mem.frame(frame).migratable() {
                    continue;
                }
                let moved = match mem.migrate(frame, upper) {
                    Ok(nf) => Some(nf),
                    Err(MemError::TierFull(_)) => {
                        // Demote the coldest upper-tier page if it scores
                        // lower than the candidate.
                        let mut exchanged = None;
                        while let Some((ws, victim)) = victims.pop() {
                            if ws >= score {
                                break;
                            }
                            if !mem.frame(victim).migratable() {
                                continue;
                            }
                            if let Ok(nv) = mem.migrate(victim, tier) {
                                self.rings[upper.index()].remove(victim);
                                self.rings[tier.index()].push_back(nv);
                                self.transfer(victim, nv);
                                // lint: allow(result) - a failed back-promotion leaves a one-sided exchange; the value is consumed via `exchanged`
                                exchanged = mem.migrate(frame, upper).ok();
                            }
                            break;
                        }
                        exchanged
                    }
                    Err(_) => None,
                };
                if let Some(nf) = moved {
                    self.rings[tier.index()].remove(frame);
                    self.rings[upper.index()].push_back(nf);
                    self.transfer(frame, nf);
                    self.promotions += 1;
                    out.promoted += 1;
                } else {
                    break; // sorted: later candidates score no higher
                }
            }
        }

        for t in 0..self.rings.len() {
            let tier = TierId::new(t as u8);
            if mem.tier_under_pressure(tier) {
                let p = self.on_pressure(mem, tier, now);
                out.demoted += p.demoted;
                out.pages_scanned += p.pages_scanned;
            }
        }
        out
    }

    fn on_pressure(&mut self, mem: &mut MemorySystem, tier: TierId, _now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();
        let lower = tier.lower(self.rings.len());
        let mut budget = 4096usize;
        // Score the tier once, coldest last (pop order).
        let mut victims: Vec<(u32, FrameId)> = self.rings[tier.index()]
            .iter()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|f| (0, f))
            .collect();
        for e in victims.iter_mut() {
            e.0 = self.score(e.1);
        }
        victims.sort_by_key(|(s, f)| (std::cmp::Reverse(*s), f.raw()));
        while !mem.tier_balanced(tier) && budget > 0 {
            budget -= 1;
            out.pages_scanned += 1;
            let victim = loop {
                match victims.pop() {
                    Some((_, v)) if mem.frame(v).migratable() => break Some(v),
                    Some(_) => continue,
                    None => break None,
                }
            };
            let Some(victim) = victim else { break };
            match lower {
                Some(lt) => match mem.migrate(victim, lt) {
                    Ok(nv) => {
                        self.rings[tier.index()].remove(victim);
                        self.rings[lt.index()].push_back(nv);
                        self.transfer(victim, nv);
                        out.demoted += 1;
                    }
                    Err(_) => break,
                },
                None => {
                    if mem.evict(victim).is_ok() {
                        self.rings[tier.index()].remove(victim);
                        self.history[victim.index()] = 0;
                        self.freq[victim.index()] = 0;
                    } else {
                        break;
                    }
                }
            }
        }
        out
    }

    fn tick_interval(&self) -> Option<Nanos> {
        Some(self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_mem::{MemConfig, PageKind, VPage};

    fn setup() -> (MemorySystem, Amp) {
        let mem = MemorySystem::new(MemConfig::two_tier(32, 128));
        let amp = Amp::with_defaults(mem.topology());
        (mem, amp)
    }

    #[test]
    fn profiles_every_tracked_page_each_tick() {
        let (mut mem, mut amp) = setup();
        for v in 0..40u64 {
            let f = mem.alloc_page(PageKind::Anon).unwrap();
            mem.map(VPage::new(v), f).unwrap();
            amp.on_page_mapped(&mut mem, f);
        }
        let out = amp.tick(&mut mem, Nanos::from_secs(1));
        assert!(
            out.pages_scanned >= 40,
            "full-memory profiling is AMP's defining (and damning) trait"
        );
    }

    #[test]
    fn hot_pm_page_promotes_within_two_ticks() {
        let (mut mem, mut amp) = setup();
        let f = mem
            .alloc_page_in_tier(PageKind::Anon, TierId::new(1))
            .unwrap();
        mem.map(VPage::new(1), f).unwrap();
        amp.on_page_mapped(&mut mem, f);
        mem.access(VPage::new(1), AccessKind::Read).unwrap();
        amp.tick(&mut mem, Nanos::from_secs(1));
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
        assert_eq!(amp.promotions(), 1);
    }

    #[test]
    fn exchange_requires_beating_the_victim() {
        let (mut mem, mut amp) = setup();
        // DRAM full of pages with strong history.
        let mut v = 0u64;
        let mut dram = Vec::new();
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            amp.on_page_mapped(&mut mem, f);
            dram.push(v);
            v += 1;
        }
        let cold_pm = mem
            .alloc_page_in_tier(PageKind::Anon, TierId::new(1))
            .unwrap();
        mem.map(VPage::new(999), cold_pm).unwrap();
        amp.on_page_mapped(&mut mem, cold_pm);
        for s in 1..=3u64 {
            for pv in &dram {
                mem.access(VPage::new(*pv), AccessKind::Read).unwrap();
            }
            amp.tick(&mut mem, Nanos::from_secs(s));
        }
        assert_eq!(
            mem.frame(mem.translate(VPage::new(999)).unwrap()).tier(),
            TierId::new(1),
            "a never-touched page cannot displace hot DRAM pages"
        );
    }

    #[test]
    fn pressure_demotes_lowest_scoring_pages() {
        let (mut mem, mut amp) = setup();
        let mut frames = Vec::new();
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            amp.on_page_mapped(&mut mem, f);
            frames.push((v, f));
            v += 1;
        }
        // Build history for the second half over two ticks.
        for s in 1..=2u64 {
            for (pv, _) in &frames[frames.len() / 2..] {
                mem.access(VPage::new(*pv), AccessKind::Read).unwrap();
            }
            amp.tick(&mut mem, Nanos::from_secs(s));
        }
        amp.on_pressure(&mut mem, TierId::TOP, Nanos::from_secs(3));
        let survivors = |range: &[(u64, FrameId)]| {
            range
                .iter()
                .filter(|(pv, _)| {
                    mem.frame(mem.translate(VPage::new(*pv)).unwrap()).tier() == TierId::TOP
                })
                .count()
        };
        let half = frames.len() / 2;
        assert!(survivors(&frames[half..]) > survivors(&frames[..half]));
    }

    #[test]
    fn traits_match_table_one_row() {
        let (_, amp) = setup();
        let t = amp.traits();
        assert_eq!(t.selection_promotion, "Recency+Frequency+Random");
        assert_eq!(t.key_insight, "Hybrid page selection");
        assert!(!t.numa_aware);
        assert!(t.space_overhead);
    }
}
