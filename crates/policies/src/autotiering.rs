//! AutoTiering baselines (Kim et al., ATC'21), CPM and OPM flavours.
//!
//! AutoTiering tracks page accesses with **software hint page faults**
//! (AutoNUMA-style PTE poisoning): a sampled page's PTE is invalidated;
//! the next access takes a fault that both *reveals* the access and
//! *costs* fault-handling time — the overhead the MULTI-CLOCK paper blames
//! for AutoTiering's losses (§V-C.1).
//!
//! * **AT-CPM** (conservative promotion migration): when a lower-tier page
//!   faults, it is migrated to the upper tier *synchronously on the fault
//!   path*; if the upper tier is full it performs a two-sided **page
//!   exchange** with a cold upper-tier page — both copies stall the
//!   application. Promotion is recency-triggered (a single fault).
//! * **AT-OPM** (opportunistic promotion migration): keeps an N-bit
//!   per-page fault-history vector (the paper's "maintain N-bit history
//!   for demotion"); a background pass demotes zero-history pages to keep
//!   promotion headroom, so fault-path promotions are asynchronous and
//!   cheaper — but the technique still pays for every hint fault and
//!   carries per-page metadata (Table I "Space Overhead").

use mc_clock::IndexedList;
use mc_mem::{
    AccessKind, FrameId, MemError, MemorySystem, Nanos, PolicyTraits, TickOutcome, TierId,
    TieringPolicy, Topology,
};
use mc_obs::EventKind;

/// Which AutoTiering variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoTieringMode {
    /// Conservative promotion migration (synchronous fault-path exchange).
    Cpm,
    /// Opportunistic promotion migration (N-bit history + background
    /// demotion).
    Opm,
}

impl AutoTieringMode {
    /// Short display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AutoTieringMode::Cpm => "AT-CPM",
            AutoTieringMode::Opm => "AT-OPM",
        }
    }
}

/// Tunables for [`AutoTiering`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoTieringConfig {
    /// Sampling daemon period.
    pub scan_interval: Nanos,
    /// PTEs poisoned per tick (the AutoNUMA scan-size analogue).
    pub sample_batch: usize,
    /// History vector width in bits (OPM).
    pub history_bits: u32,
    /// Maximum pages examined per pressure invocation.
    pub reclaim_batch: usize,
    /// OPM: free pages the background demoter tries to keep available in
    /// the top tier for incoming promotions.
    pub headroom_pages: usize,
}

impl Default for AutoTieringConfig {
    fn default() -> Self {
        AutoTieringConfig {
            scan_interval: Nanos::from_secs(1),
            sample_batch: 4096,
            history_bits: 8,
            reclaim_batch: 4096,
            headroom_pages: 64,
        }
    }
}

/// The AutoTiering policy (CPM or OPM).
#[derive(Debug)]
pub struct AutoTiering {
    mode: AutoTieringMode,
    cfg: AutoTieringConfig,
    /// Round-robin poisoning ring per tier.
    rings: Vec<IndexedList>,
    /// Per-frame fault-history bits (bit 0 = most recent interval).
    history: Vec<u8>,
    /// Frames that hint-faulted during the current interval.
    faulted: Vec<bool>,
    promotions: u64,
    demotions: u64,
    exchanges: u64,
}

impl AutoTiering {
    /// Creates an AutoTiering instance.
    pub fn new(mode: AutoTieringMode, cfg: AutoTieringConfig, topology: &Topology) -> Self {
        assert!(cfg.sample_batch > 0, "sample batch must be positive");
        assert!(
            (1..=8).contains(&cfg.history_bits),
            "history bits must be in 1..=8"
        );
        AutoTiering {
            mode,
            cfg,
            rings: (0..topology.tier_count())
                .map(|_| IndexedList::new())
                .collect(),
            history: vec![0; topology.total_pages()],
            faulted: vec![false; topology.total_pages()],
            promotions: 0,
            demotions: 0,
            exchanges: 0,
        }
    }

    /// CPM with default tunables.
    pub fn cpm(topology: &Topology) -> Self {
        Self::new(AutoTieringMode::Cpm, AutoTieringConfig::default(), topology)
    }

    /// OPM with default tunables.
    pub fn opm(topology: &Topology) -> Self {
        Self::new(AutoTieringMode::Opm, AutoTieringConfig::default(), topology)
    }

    /// The variant in use.
    pub fn mode(&self) -> AutoTieringMode {
        self.mode
    }

    /// Pages promoted so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Pages demoted so far.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Fault-path page exchanges performed (CPM).
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// The fault history of a frame (for tests).
    pub fn history_of(&self, frame: FrameId) -> u8 {
        self.history[frame.index()]
    }

    fn untrack(&mut self, frame: FrameId, tier: TierId) {
        self.rings[tier.index()].remove(frame);
        self.history[frame.index()] = 0;
        self.faulted[frame.index()] = false;
    }

    fn retrack(&mut self, old: FrameId, new: FrameId, src: TierId, dst: TierId) {
        let h = self.history[old.index()];
        let f = self.faulted[old.index()];
        self.untrack(old, src);
        self.rings[dst.index()].push_back(new);
        self.history[new.index()] = h;
        self.faulted[new.index()] = f;
    }

    /// Finds a cold (zero-history, unfaulted) victim in `tier`, scanning
    /// up to `limit` ring entries.
    fn find_cold_victim(
        &mut self,
        mem: &MemorySystem,
        tier: TierId,
        limit: usize,
    ) -> Option<FrameId> {
        let len = self.rings[tier.index()].len().min(limit);
        for _ in 0..len {
            let frame = self.rings[tier.index()].pop_front()?;
            self.rings[tier.index()].push_back(frame);
            if self.history[frame.index()] == 0
                && !self.faulted[frame.index()]
                && mem.frame(frame).migratable()
            {
                return Some(frame);
            }
        }
        None
    }

    /// Picks any migratable round-robin victim (CPM's fault-path exchange
    /// falls back to this when no zero-history page exists — it *must*
    /// free a frame to complete the exchange, which is one of the ways it
    /// hurts itself on the critical path).
    fn find_any_victim(
        &mut self,
        mem: &MemorySystem,
        tier: TierId,
        limit: usize,
    ) -> Option<FrameId> {
        let len = self.rings[tier.index()].len().min(limit);
        for _ in 0..len {
            let frame = self.rings[tier.index()].pop_front()?;
            self.rings[tier.index()].push_back(frame);
            if mem.frame(frame).migratable() {
                return Some(frame);
            }
        }
        None
    }

    /// Demotes one cold page out of `tier`; returns whether a page moved.
    /// Synchronous (fault-path) demotions fall back to an arbitrary
    /// victim when no cold page exists.
    fn demote_cold(&mut self, mem: &mut MemorySystem, tier: TierId, sync: bool) -> bool {
        let Some(lower) = tier.lower(self.rings.len()) else {
            return false;
        };
        let victim = self
            .find_cold_victim(mem, tier, 256)
            .or_else(|| sync.then(|| self.find_any_victim(mem, tier, 64)).flatten());
        let Some(victim) = victim else {
            return false;
        };
        match mem.migrate(victim, lower) {
            Ok(new_frame) => {
                if sync {
                    // CPM exchanges run on the fault path: the copy stalls
                    // the application too.
                    let extra = mem.latency().migration(tier, lower).background;
                    mem.ledger_mut().charge_app_stall(extra);
                }
                self.retrack(victim, new_frame, tier, lower);
                self.demotions += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Attempts to promote `frame` to the tier above.
    fn promote(&mut self, mem: &mut MemorySystem, frame: FrameId, tier: TierId) {
        let Some(upper) = tier.upper() else { return };
        match mem.migrate(frame, upper) {
            Ok(new_frame) => {
                if self.mode == AutoTieringMode::Cpm {
                    let extra = mem.latency().migration(tier, upper).background;
                    mem.ledger_mut().charge_app_stall(extra);
                }
                self.retrack(frame, new_frame, tier, upper);
                self.promotions += 1;
            }
            Err(MemError::TierFull(_)) => match self.mode {
                AutoTieringMode::Cpm => {
                    // Synchronous two-sided exchange.
                    if self.demote_cold(mem, upper, true) {
                        if let Ok(new_frame) = mem.migrate(frame, upper) {
                            let extra = mem.latency().migration(tier, upper).background;
                            mem.ledger_mut().charge_app_stall(extra);
                            self.retrack(frame, new_frame, tier, upper);
                            self.promotions += 1;
                            self.exchanges += 1;
                        }
                    }
                }
                AutoTieringMode::Opm => {
                    // Defer: the background demoter will open headroom.
                }
            },
            Err(_) => {}
        }
    }
}

impl TieringPolicy for AutoTiering {
    fn name(&self) -> &'static str {
        match self.mode {
            AutoTieringMode::Cpm => "at-cpm",
            AutoTieringMode::Opm => "at-opm",
        }
    }

    fn traits(&self) -> PolicyTraits {
        PolicyTraits {
            name: match self.mode {
                AutoTieringMode::Cpm => "AutoTiering-CPM",
                AutoTieringMode::Opm => "AutoTiering-OPM",
            },
            page_access_tracking: "Software Page Fault",
            selection_promotion: "Recency",
            selection_demotion: "Frequency",
            numa_aware: true,
            space_overhead: true,
            generality: "All",
            key_insight: "Maintain N-bit history for demotion",
        }
    }

    fn on_page_mapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.rings[tier.index()].push_back(frame);
        self.history[frame.index()] = 0;
        self.faulted[frame.index()] = false;
    }

    fn on_page_unmapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.untrack(frame, tier);
    }

    fn on_supervised_access(
        &mut self,
        _mem: &mut MemorySystem,
        _frame: FrameId,
        _kind: AccessKind,
    ) {
        // AutoTiering only observes accesses through hint faults.
    }

    fn on_hint_fault(&mut self, mem: &mut MemorySystem, frame: FrameId, _kind: AccessKind) {
        self.faulted[frame.index()] = true;
        let tier = mem.frame(frame).tier();
        if !tier.is_top() {
            self.promote(mem, frame, tier);
        }
    }

    fn tick(&mut self, mem: &mut MemorySystem, _now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();

        // Fold the interval's faults into the history vectors of every
        // tracked page, then poison the next sample of PTEs.
        let mask = ((1u16 << self.cfg.history_bits) - 1) as u8;
        for ring in &self.rings {
            for frame in ring.iter().collect::<Vec<_>>() {
                let h = &mut self.history[frame.index()];
                *h = ((*h << 1) | u8::from(self.faulted[frame.index()])) & mask;
                self.faulted[frame.index()] = false;
            }
        }

        // Round-robin PTE poisoning across tiers, proportional to size.
        let total: usize = self.rings.iter().map(|r| r.len()).sum();
        if total > 0 {
            let sample_batch = self.cfg.sample_batch;
            for ring in &mut self.rings {
                let tier_share = (sample_batch * ring.len()).div_ceil(total);
                let n = tier_share.min(ring.len());
                for _ in 0..n {
                    let Some(frame) = ring.pop_front() else {
                        break;
                    };
                    ring.push_back(frame);
                    if let Some(vpage) = mem.frame(frame).vpage() {
                        mem.poison(vpage);
                        out.pages_scanned += 1;
                    }
                }
            }
        }
        let poisoned = out.pages_scanned;
        mem.recorder_mut().emit(|| EventKind::Custom {
            tag: "autotiering_poison_batch",
            a: poisoned,
            b: total as u64,
        });

        // OPM: keep promotion headroom in the top tier.
        if self.mode == AutoTieringMode::Opm {
            let mut guard = self.cfg.reclaim_batch;
            while mem.tier_free(TierId::TOP) < self.cfg.headroom_pages && guard > 0 {
                if !self.demote_cold(mem, TierId::TOP, false) {
                    break;
                }
                out.demoted += 1;
                guard -= 1;
            }
        }

        // Watermark pressure handling.
        for t in 0..self.rings.len() {
            let tier = TierId::new(t as u8);
            if mem.tier_under_pressure(tier) {
                let p = self.on_pressure(mem, tier, _now);
                out.pages_scanned += p.pages_scanned;
                out.demoted += p.demoted;
            }
        }
        out
    }

    fn on_pressure(&mut self, mem: &mut MemorySystem, tier: TierId, _now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();
        let mut budget = self.cfg.reclaim_batch;
        let lower = tier.lower(self.rings.len());
        while !mem.tier_balanced(tier) && budget > 0 {
            budget -= 1;
            out.pages_scanned += 1;
            // Coldest-first: zero-history victims, else round-robin.
            let victim = self.find_cold_victim(mem, tier, 128).or_else(|| {
                let f = self.rings[tier.index()].pop_front()?;
                self.rings[tier.index()].push_back(f);
                mem.frame(f).migratable().then_some(f)
            });
            let Some(victim) = victim else { break };
            match lower {
                Some(lower_tier) => {
                    if let Ok(new_frame) = mem.migrate(victim, lower_tier) {
                        self.retrack(victim, new_frame, tier, lower_tier);
                        self.demotions += 1;
                        out.demoted += 1;
                    }
                }
                None => {
                    let t = tier;
                    if mem.evict(victim).is_ok() {
                        self.untrack(victim, t);
                    }
                }
            }
        }
        out
    }

    fn tick_interval(&self) -> Option<Nanos> {
        Some(self.cfg.scan_interval)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("autotiering_promotions", self.promotions),
            ("autotiering_demotions", self.demotions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_mem::{MemConfig, PageKind, VPage};

    fn map_in_tier(mem: &mut MemorySystem, at: &mut AutoTiering, v: u64, tier: TierId) -> FrameId {
        let f = mem.alloc_page_in_tier(PageKind::Anon, tier).unwrap();
        mem.map(VPage::new(v), f).unwrap();
        at.on_page_mapped(mem, f);
        f
    }

    #[test]
    fn tick_poisons_ptes() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut at = AutoTiering::cpm(mem.topology());
        for v in 0..20u64 {
            map_in_tier(&mut mem, &mut at, v, TierId::new(1));
        }
        let out = at.tick(&mut mem, Nanos::from_secs(1));
        assert!(out.pages_scanned > 0);
        let poisoned = (0..20u64)
            .filter(|v| mem.page_table().get(VPage::new(*v)).unwrap().poisoned)
            .count();
        assert_eq!(poisoned, 20, "small working sets are fully sampled");
    }

    #[test]
    fn hint_fault_promotes_pm_page() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut at = AutoTiering::cpm(mem.topology());
        let f = map_in_tier(&mut mem, &mut at, 1, TierId::new(1));
        at.tick(&mut mem, Nanos::from_secs(1));
        let out = mem.access(VPage::new(1), AccessKind::Read).unwrap();
        assert!(out.hint_fault, "poisoned PTE faults");
        at.on_hint_fault(&mut mem, f, AccessKind::Read);
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP, "promoted on fault path");
        assert_eq!(at.promotions(), 1);
    }

    #[test]
    fn cpm_exchanges_when_dram_full() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let mut at = AutoTiering::cpm(mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            at.on_page_mapped(&mut mem, f);
            v += 1;
        }
        let hot = map_in_tier(&mut mem, &mut at, 1000, TierId::new(1));
        at.on_hint_fault(&mut mem, hot, AccessKind::Read);
        assert_eq!(at.promotions(), 1);
        assert_eq!(at.exchanges(), 1, "CPM exchanged with a cold DRAM page");
        assert_eq!(at.demotions(), 1);
    }

    #[test]
    fn opm_defers_promotion_until_headroom_exists() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(128, 512));
        let mut at = AutoTiering::opm(mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            at.on_page_mapped(&mut mem, f);
            v += 1;
        }
        let hot = map_in_tier(&mut mem, &mut at, 1000, TierId::new(1));
        at.on_hint_fault(&mut mem, hot, AccessKind::Read);
        assert_eq!(
            at.promotions(),
            0,
            "OPM does not exchange on the fault path"
        );
        // Background demotion opens headroom at the next tick.
        at.tick(&mut mem, Nanos::from_secs(1));
        assert!(at.demotions() > 0, "background demoter ran");
        assert!(mem.tier_free(TierId::TOP) > 0);
        // Next fault succeeds.
        at.on_hint_fault(&mut mem, hot, AccessKind::Read);
        assert_eq!(at.promotions(), 1);
    }

    #[test]
    fn history_folds_faults_and_shifts() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut at = AutoTiering::opm(mem.topology());
        let f = map_in_tier(&mut mem, &mut at, 1, TierId::TOP);
        at.on_hint_fault(&mut mem, f, AccessKind::Read);
        at.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(at.history_of(f) & 1, 1, "fault recorded");
        at.tick(&mut mem, Nanos::from_secs(2));
        assert_eq!(at.history_of(f) & 1, 0, "history shifted");
        assert_eq!(at.history_of(f) & 2, 2);
    }

    #[test]
    fn opm_protects_pages_with_history_from_background_demotion() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let mut at = AutoTiering::opm(mem.topology());
        let mut frames = Vec::new();
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            at.on_page_mapped(&mut mem, f);
            frames.push(f);
            v += 1;
        }
        // Give the first three pages fault history.
        for f in frames.iter().take(3) {
            at.on_hint_fault(&mut mem, *f, AccessKind::Read);
        }
        at.tick(&mut mem, Nanos::from_secs(1));
        for f in frames.iter().take(3) {
            assert_eq!(
                mem.frame(*f).tier(),
                TierId::TOP,
                "faulted page must not be demoted by the background pass"
            );
        }
        assert!(at.demotions() > 0, "cold pages were demoted for headroom");
    }

    #[test]
    fn pressure_reclaims_lowest_tier_by_eviction() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 32));
        let mut at = AutoTiering::cpm(mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page(PageKind::Anon) {
            mem.map(VPage::new(v), f).unwrap();
            at.on_page_mapped(&mut mem, f);
            v += 1;
        }
        at.on_pressure(&mut mem, TierId::new(1), Nanos::ZERO);
        assert!(mem.stats().evictions > 0);
        assert!(mem.tier_balanced(TierId::new(1)));
    }

    #[test]
    fn traits_differ_by_mode_name_only() {
        let mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let cpm = AutoTiering::cpm(mem.topology());
        let opm = AutoTiering::opm(mem.topology());
        assert_eq!(cpm.traits().page_access_tracking, "Software Page Fault");
        assert!(cpm.traits().space_overhead);
        assert_ne!(cpm.traits().name, opm.traits().name);
        assert_eq!(cpm.mode().label(), "AT-CPM");
        assert_eq!(opm.mode().label(), "AT-OPM");
    }
}
