//! Oracle selection policies for ablation.
//!
//! The paper argues strict LRU/LFU are impractical in a kernel ("tracking
//! every in-memory page access is not feasible", §II-D) and therefore does
//! not compare against them on real hardware. In simulation we *can*
//! observe every access, so these oracles bound how much of MULTI-CLOCK's
//! win comes from selection quality versus tracking cost. They require the
//! engine's oracle-visibility mode (every access is delivered through
//! [`mc_mem::TieringPolicy::on_supervised_access`]).
//!
//! Recency stamps live in a single global [`LruOrder`] so they stay
//! comparable across tiers and across migrations.

use mc_clock::LruOrder;
use mc_mem::{
    AccessKind, FrameId, MemError, MemorySystem, Nanos, PolicyTraits, TickOutcome, TierId,
    TieringPolicy, Topology,
};
use std::collections::HashMap;

/// Which oracle to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Strict least-recently-used: promote the most recently used
    /// lower-tier pages, demote the least recently used top-tier pages.
    Lru,
    /// Least-frequently-used with periodic decay: promote by access count.
    Lfu,
}

impl OracleKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::Lru => "oracle-LRU",
            OracleKind::Lfu => "oracle-LFU",
        }
    }
}

/// A full-visibility selection oracle.
#[derive(Debug)]
pub struct OraclePolicy {
    kind: OracleKind,
    /// Global recency order over every tracked frame.
    recency: LruOrder,
    /// Per-frame access counts (LFU), halved every tick.
    counts: HashMap<FrameId, u64>,
    /// Pages to promote per tick.
    batch: usize,
    interval: Nanos,
    promotions: u64,
}

impl OraclePolicy {
    /// Creates an oracle policy.
    pub fn new(kind: OracleKind, _topology: &Topology) -> Self {
        OraclePolicy {
            kind,
            recency: LruOrder::new(),
            counts: HashMap::new(),
            batch: 1024,
            interval: Nanos::from_secs(1),
            promotions: 0,
        }
    }

    /// The oracle flavour.
    pub fn kind(&self) -> OracleKind {
        self.kind
    }

    /// Pages promoted so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// The score of a frame under this oracle (higher = hotter).
    fn score(&self, frame: FrameId) -> u64 {
        match self.kind {
            OracleKind::Lru => self.recency.stamp_of(frame).unwrap_or(0),
            OracleKind::Lfu => self.counts.get(&frame).copied().unwrap_or(0),
        }
    }

    /// All tracked frames of one tier, hottest first.
    fn by_heat(&self, mem: &MemorySystem, tier: TierId) -> Vec<FrameId> {
        let mut v: Vec<(u64, FrameId)> = self
            .recency
            .hottest_n(usize::MAX)
            .into_iter()
            .filter(|f| mem.frame(*f).tier() == tier)
            .map(|f| (self.score(f), f))
            .collect();
        v.sort_by_key(|(s, f)| (std::cmp::Reverse(*s), f.raw()));
        v.into_iter().map(|(_, f)| f).collect()
    }

    /// Carries recency/count metadata across a migration.
    fn transfer(&mut self, old: FrameId, new: FrameId) {
        let stamp = self.recency.stamp_of(old).unwrap_or(0);
        self.recency.remove(old);
        self.recency.insert_with_stamp(new, stamp);
        if let Some(c) = self.counts.remove(&old) {
            self.counts.insert(new, c);
        }
    }

    /// Demotes the coldest migratable page of a tier; returns success.
    fn demote_coldest(&mut self, mem: &mut MemorySystem, tier: TierId) -> bool {
        let Some(lower) = tier.lower(mem.topology().tier_count()) else {
            return false;
        };
        let mut members = self.by_heat(mem, tier);
        members.reverse(); // coldest first
        for victim in members.into_iter().take(16) {
            if !mem.frame(victim).migratable() {
                continue;
            }
            if let Ok(new_frame) = mem.migrate(victim, lower) {
                self.transfer(victim, new_frame);
                return true;
            }
        }
        false
    }
}

impl TieringPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        match self.kind {
            OracleKind::Lru => "oracle-lru",
            OracleKind::Lfu => "oracle-lfu",
        }
    }

    fn traits(&self) -> PolicyTraits {
        PolicyTraits {
            name: match self.kind {
                OracleKind::Lru => "Oracle-LRU",
                OracleKind::Lfu => "Oracle-LFU",
            },
            page_access_tracking: "Full visibility (simulation only)",
            selection_promotion: match self.kind {
                OracleKind::Lru => "Recency",
                OracleKind::Lfu => "Frequency",
            },
            selection_demotion: match self.kind {
                OracleKind::Lru => "Recency",
                OracleKind::Lfu => "Frequency",
            },
            numa_aware: true,
            space_overhead: true,
            generality: "All",
            key_insight: "Upper bound on selection quality",
        }
    }

    fn on_page_mapped(&mut self, _mem: &mut MemorySystem, frame: FrameId) {
        self.recency.touch(frame);
        self.counts.insert(frame, 0);
    }

    fn on_page_unmapped(&mut self, _mem: &mut MemorySystem, frame: FrameId) {
        self.recency.remove(frame);
        self.counts.remove(&frame);
    }

    fn on_supervised_access(&mut self, _mem: &mut MemorySystem, frame: FrameId, _kind: AccessKind) {
        self.recency.touch(frame);
        *self.counts.entry(frame).or_insert(0) += 1;
    }

    fn tick(&mut self, mem: &mut MemorySystem, _now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();
        // Promote the hottest lower-tier pages, demoting to make room —
        // but only while the candidate is hotter than the tier-up victim
        // (the oracle never makes a placement worse).
        let tier_count = mem.topology().tier_count();
        for t in (1..tier_count).rev() {
            let tier = TierId::new(t as u8);
            let Some(upper) = tier.upper() else {
                continue; // t >= 1: never the top tier
            };
            let hot: Vec<FrameId> = self
                .by_heat(mem, tier)
                .into_iter()
                .take(self.batch)
                .collect();
            for frame in hot {
                if !mem.frame(frame).migratable() || mem.frame(frame).tier() != tier {
                    continue;
                }
                let moved = match mem.migrate(frame, upper) {
                    Ok(nf) => Some(nf),
                    Err(MemError::TierFull(_)) => {
                        // Worth an exchange only if the candidate beats
                        // the coldest upper-tier page.
                        let coldest_upper = self.by_heat(mem, upper).last().map(|f| self.score(*f));
                        if coldest_upper.is_some_and(|c| self.score(frame) > c)
                            && self.demote_coldest(mem, upper)
                        {
                            mem.migrate(frame, upper).ok()
                        } else {
                            None
                        }
                    }
                    Err(_) => None,
                };
                if let Some(new_frame) = moved {
                    self.transfer(frame, new_frame);
                    self.promotions += 1;
                    out.promoted += 1;
                } else {
                    // Nothing colder upstairs: later candidates are colder
                    // still.
                    break;
                }
            }
        }
        // LFU decay.
        if self.kind == OracleKind::Lfu {
            // lint: allow(determinism) - halving every counter commutes; iteration order cannot change the result
            for c in self.counts.values_mut() {
                *c /= 2;
            }
        }
        for t in 0..tier_count {
            let tier = TierId::new(t as u8);
            if mem.tier_under_pressure(tier) {
                let p = self.on_pressure(mem, tier, _now);
                out.demoted += p.demoted;
            }
        }
        out
    }

    fn on_pressure(&mut self, mem: &mut MemorySystem, tier: TierId, _now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();
        let mut budget = 4096;
        while !mem.tier_balanced(tier) && budget > 0 {
            budget -= 1;
            if self.demote_coldest(mem, tier) {
                out.demoted += 1;
                continue;
            }
            // Lowest tier (or stuck): evict the coldest member.
            let victim = self.by_heat(mem, tier).pop();
            let Some(victim) = victim else { break };
            if mem.evict(victim).is_ok() {
                self.recency.remove(victim);
                self.counts.remove(&victim);
            } else {
                break;
            }
        }
        out
    }

    fn tick_interval(&self) -> Option<Nanos> {
        Some(self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_mem::{MemConfig, PageKind, VPage};

    fn map_in_tier(mem: &mut MemorySystem, p: &mut OraclePolicy, v: u64, tier: TierId) -> FrameId {
        let f = mem.alloc_page_in_tier(PageKind::Anon, tier).unwrap();
        mem.map(VPage::new(v), f).unwrap();
        p.on_page_mapped(mem, f);
        f
    }

    #[test]
    fn lru_oracle_promotes_recent_pages() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut p = OraclePolicy::new(OracleKind::Lru, mem.topology());
        let f = map_in_tier(&mut mem, &mut p, 1, TierId::new(1));
        p.on_supervised_access(&mut mem, f, AccessKind::Read);
        let out = p.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(out.promoted, 1);
        assert_eq!(
            mem.frame(mem.translate(VPage::new(1)).unwrap()).tier(),
            TierId::TOP
        );
    }

    #[test]
    fn exchange_requires_candidate_hotter_than_victim() {
        // Fill DRAM with pages touched *after* the PM page: the PM page is
        // colder than everything upstairs, so the oracle must refuse the
        // exchange.
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let mut p = OraclePolicy::new(OracleKind::Lru, mem.topology());
        let cold_pm = map_in_tier(&mut mem, &mut p, 999, TierId::new(1));
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            p.on_page_mapped(&mut mem, f);
            p.on_supervised_access(&mut mem, f, AccessKind::Read);
            v += 1;
        }
        let out = p.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(out.promoted, 0, "cold PM page must not displace hot DRAM");
        assert_eq!(mem.frame(cold_pm).tier(), TierId::new(1));
    }

    #[test]
    fn hot_pm_page_displaces_cold_dram_page() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(16, 64));
        let mut p = OraclePolicy::new(OracleKind::Lru, mem.topology());
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            p.on_page_mapped(&mut mem, f);
            v += 1;
        }
        let hot = map_in_tier(&mut mem, &mut p, 999, TierId::new(1));
        p.on_supervised_access(&mut mem, hot, AccessKind::Read);
        let out = p.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(out.promoted, 1);
        let nf = mem.translate(VPage::new(999)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
    }

    #[test]
    fn recency_survives_migration() {
        // The fix for the cross-tier stamp bug: a page's heat must be
        // comparable before and after it moves.
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut p = OraclePolicy::new(OracleKind::Lru, mem.topology());
        let a = map_in_tier(&mut mem, &mut p, 1, TierId::new(1));
        let b = map_in_tier(&mut mem, &mut p, 2, TierId::new(1));
        p.on_supervised_access(&mut mem, a, AccessKind::Read);
        p.on_supervised_access(&mut mem, b, AccessKind::Read);
        let score_b_before = p.score(b);
        p.tick(&mut mem, Nanos::from_secs(1)); // promotes both
        let nb = mem.translate(VPage::new(2)).unwrap();
        assert_eq!(mem.frame(nb).tier(), TierId::TOP);
        assert_eq!(p.score(nb), score_b_before, "stamp carried across tiers");
    }

    #[test]
    fn lfu_oracle_prefers_frequent_pages_under_contention() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut p = OraclePolicy::new(OracleKind::Lfu, mem.topology());
        p.batch = 1;
        let frequent = map_in_tier(&mut mem, &mut p, 1, TierId::new(1));
        let rare = map_in_tier(&mut mem, &mut p, 2, TierId::new(1));
        for _ in 0..10 {
            p.on_supervised_access(&mut mem, frequent, AccessKind::Read);
        }
        p.on_supervised_access(&mut mem, rare, AccessKind::Read);
        p.tick(&mut mem, Nanos::from_secs(1));
        assert_eq!(
            mem.frame(mem.translate(VPage::new(1)).unwrap()).tier(),
            TierId::TOP,
            "the frequent page wins the single slot"
        );
        let _ = rare;
    }

    #[test]
    fn untouched_pages_are_not_promoted_by_lfu() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut p = OraclePolicy::new(OracleKind::Lfu, mem.topology());
        let f = map_in_tier(&mut mem, &mut p, 1, TierId::new(1));
        let out = p.tick(&mut mem, Nanos::from_secs(1));
        // A zero-count page may be promoted only into *free* space (it
        // never displaces anything).
        let _ = out;
        let _ = f;
        assert_eq!(p.counts.get(&f).copied().unwrap_or(0), 0);
    }

    #[test]
    fn pressure_demotes_coldest_first() {
        let mut mem = MemorySystem::new(MemConfig::two_tier(32, 128));
        let mut p = OraclePolicy::new(OracleKind::Lru, mem.topology());
        let mut frames = Vec::new();
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            p.on_page_mapped(&mut mem, f);
            frames.push((v, f));
            v += 1;
        }
        // Touch the last half so they are recent.
        let half = frames.len() / 2;
        for (_, f) in &frames[half..] {
            p.on_supervised_access(&mut mem, *f, AccessKind::Read);
        }
        p.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        let survivors_recent = frames[half..]
            .iter()
            .filter(|(v, _)| {
                mem.frame(mem.translate(VPage::new(*v)).unwrap()).tier() == TierId::TOP
            })
            .count();
        let survivors_old = frames[..half]
            .iter()
            .filter(|(v, _)| {
                mem.frame(mem.translate(VPage::new(*v)).unwrap()).tier() == TierId::TOP
            })
            .count();
        assert!(survivors_recent > survivors_old);
    }

    #[test]
    fn labels() {
        assert_eq!(OracleKind::Lru.label(), "oracle-LRU");
        assert_eq!(OracleKind::Lfu.label(), "oracle-LFU");
    }
}
