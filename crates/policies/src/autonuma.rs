//! AutoNUMA-Tiering (Yang's "persistent memory as a NUMA node" design,
//! paper §II-D and §VI).
//!
//! The design MULTI-CLOCK contrasts itself with in related work: NUMA
//! balancing extended to tiers. Its distinguishing limitations, which
//! this implementation reproduces:
//!
//! * **anonymous pages only** — file-backed memory is never tracked or
//!   migrated ("handles promotion/demotion for anonymous pages only ...
//!   MULTI-CLOCK is capable of managing all types of pages");
//! * hint-page-fault access tracking (AutoNUMA's sampled PTE poisoning),
//!   paying the software-fault cost on every sampled access;
//! * promotion on fault **only into free space** — room is made solely by
//!   the reclaim path's demotion of cold pages, so promotions stall when
//!   DRAM is full until watermark pressure demotes something.

use mc_clock::IndexedList;
use mc_mem::{
    AccessKind, FrameId, MemorySystem, Nanos, PageKind, PolicyTraits, TickOutcome, TierId,
    TieringPolicy, Topology,
};
use mc_obs::EventKind;

/// The AutoNUMA-Tiering baseline.
#[derive(Debug)]
pub struct AutoNuma {
    /// Sampling ring per tier (anonymous pages only).
    rings: Vec<IndexedList>,
    /// Whether the page hint-faulted during the current interval.
    faulted: Vec<bool>,
    scan_interval: Nanos,
    sample_batch: usize,
    promotions: u64,
    demotions: u64,
}

impl AutoNuma {
    /// Creates the policy for a topology.
    pub fn new(topology: &Topology, scan_interval: Nanos, sample_batch: usize) -> Self {
        assert!(sample_batch > 0, "sample batch must be positive");
        AutoNuma {
            rings: (0..topology.tier_count())
                .map(|_| IndexedList::new())
                .collect(),
            faulted: vec![false; topology.total_pages()],
            scan_interval,
            sample_batch,
            promotions: 0,
            demotions: 0,
        }
    }

    /// With the usual defaults (1 s, 1024 pages per tick).
    pub fn with_defaults(topology: &Topology) -> Self {
        Self::new(topology, Nanos::from_secs(1), 1024)
    }

    /// Pages promoted so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Pages demoted so far.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }
}

impl TieringPolicy for AutoNuma {
    fn name(&self) -> &'static str {
        "autonuma-tiering"
    }

    fn traits(&self) -> PolicyTraits {
        PolicyTraits {
            name: "AutoNUMA-Tiering",
            page_access_tracking: "Software Page Fault",
            selection_promotion: "Recency",
            selection_demotion: "Recency",
            numa_aware: true,
            space_overhead: true,
            generality: "Anonymous only",
            key_insight: "NUMA balancing",
        }
    }

    fn on_page_mapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        // Anonymous pages only: file pages are invisible to NUMA balancing.
        if mem.frame(frame).kind() == PageKind::Anon {
            let tier = mem.frame(frame).tier();
            self.rings[tier.index()].push_back(frame);
        }
        self.faulted[frame.index()] = false;
    }

    fn on_page_unmapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.rings[tier.index()].remove(frame);
        self.faulted[frame.index()] = false;
    }

    fn on_supervised_access(&mut self, _: &mut MemorySystem, _: FrameId, _: AccessKind) {}

    fn on_hint_fault(&mut self, mem: &mut MemorySystem, frame: FrameId, _kind: AccessKind) {
        self.faulted[frame.index()] = true;
        let tier = mem.frame(frame).tier();
        let Some(upper) = tier.upper() else { return };
        // Promote only into free space; never force room.
        if let Ok(new_frame) = mem.migrate(frame, upper) {
            self.rings[tier.index()].remove(frame);
            self.rings[upper.index()].push_back(new_frame);
            self.faulted[new_frame.index()] = true;
            self.faulted[frame.index()] = false;
            self.promotions += 1;
        }
    }

    fn tick(&mut self, mem: &mut MemorySystem, now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();
        // Clear last interval's fault markers and poison the next sample.
        let total: usize = self.rings.iter().map(|r| r.len()).sum();
        if total > 0 {
            let sample_batch = self.sample_batch;
            for ring in &mut self.rings {
                let share = (sample_batch * ring.len()).div_ceil(total);
                let n = share.min(ring.len());
                for _ in 0..n {
                    let Some(frame) = ring.pop_front() else {
                        break;
                    };
                    ring.push_back(frame);
                    self.faulted[frame.index()] = false;
                    if let Some(vpage) = mem.frame(frame).vpage() {
                        mem.poison(vpage);
                        out.pages_scanned += 1;
                    }
                }
            }
        }
        let poisoned = out.pages_scanned;
        mem.recorder_mut().emit(|| EventKind::Custom {
            tag: "autonuma_poison_batch",
            a: poisoned,
            b: total as u64,
        });
        for t in 0..self.rings.len() {
            let tier = TierId::new(t as u8);
            if mem.tier_under_pressure(tier) {
                let p = self.on_pressure(mem, tier, now);
                out.demoted += p.demoted;
                out.pages_scanned += p.pages_scanned;
            }
        }
        out
    }

    fn on_pressure(&mut self, mem: &mut MemorySystem, tier: TierId, _now: Nanos) -> TickOutcome {
        // Reclaim-based demotion: unfaulted (not recently accessed)
        // anonymous pages move down; on the lowest tier they are evicted.
        let mut out = TickOutcome::default();
        let lower = tier.lower(self.rings.len());
        let mut budget = 4096usize;
        while !mem.tier_balanced(tier) && budget > 0 {
            budget -= 1;
            out.pages_scanned += 1;
            let Some(frame) = self.rings[tier.index()].pop_front() else {
                break;
            };
            if self.faulted[frame.index()] || !mem.frame(frame).migratable() {
                self.rings[tier.index()].push_back(frame);
                continue;
            }
            match lower {
                Some(lower_tier) => match mem.migrate(frame, lower_tier) {
                    Ok(new_frame) => {
                        self.rings[lower_tier.index()].push_back(new_frame);
                        self.demotions += 1;
                        out.demoted += 1;
                    }
                    Err(_) => {
                        if mem.evict(frame).is_err() {
                            self.rings[tier.index()].push_back(frame);
                        }
                    }
                },
                None => {
                    if mem.evict(frame).is_err() {
                        self.rings[tier.index()].push_back(frame);
                    }
                }
            }
        }
        out
    }

    fn tick_interval(&self) -> Option<Nanos> {
        Some(self.scan_interval)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("autonuma_promotions", self.promotions),
            ("autonuma_demotions", self.demotions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_mem::{MemConfig, VPage};

    fn setup() -> (MemorySystem, AutoNuma) {
        let mem = MemorySystem::new(MemConfig::two_tier(32, 128));
        let an = AutoNuma::with_defaults(mem.topology());
        (mem, an)
    }

    #[test]
    fn file_pages_are_never_tracked_or_migrated() {
        let (mut mem, mut an) = setup();
        let f = mem
            .alloc_page_in_tier(PageKind::File, TierId::new(1))
            .unwrap();
        mem.map(VPage::new(1), f).unwrap();
        an.on_page_mapped(&mut mem, f);
        // Ticks never poison the file page's PTE.
        for s in 1..=3 {
            an.tick(&mut mem, Nanos::from_secs(s));
        }
        let out = mem.access(VPage::new(1), AccessKind::Read).unwrap();
        assert!(
            !out.hint_fault,
            "file pages are invisible to NUMA balancing"
        );
        assert_eq!(mem.frame(out.frame).tier(), TierId::new(1));
    }

    #[test]
    fn anon_page_promotes_on_fault_when_dram_has_room() {
        let (mut mem, mut an) = setup();
        let f = mem
            .alloc_page_in_tier(PageKind::Anon, TierId::new(1))
            .unwrap();
        mem.map(VPage::new(1), f).unwrap();
        an.on_page_mapped(&mut mem, f);
        an.tick(&mut mem, Nanos::from_secs(1));
        let out = mem.access(VPage::new(1), AccessKind::Read).unwrap();
        assert!(out.hint_fault);
        an.on_hint_fault(&mut mem, out.frame, AccessKind::Read);
        let nf = mem.translate(VPage::new(1)).unwrap();
        assert_eq!(mem.frame(nf).tier(), TierId::TOP);
        assert_eq!(an.promotions(), 1);
    }

    #[test]
    fn promotion_stalls_when_dram_is_full() {
        let (mut mem, mut an) = setup();
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            an.on_page_mapped(&mut mem, f);
            v += 1;
        }
        let f = mem
            .alloc_page_in_tier(PageKind::Anon, TierId::new(1))
            .unwrap();
        mem.map(VPage::new(999), f).unwrap();
        an.on_page_mapped(&mut mem, f);
        an.on_hint_fault(&mut mem, f, AccessKind::Read);
        assert_eq!(
            an.promotions(),
            0,
            "no exchange: promotion waits for reclaim"
        );
        assert_eq!(mem.frame(f).tier(), TierId::new(1));
    }

    #[test]
    fn pressure_demotes_unfaulted_pages_first() {
        let (mut mem, mut an) = setup();
        let mut frames = Vec::new();
        let mut v = 0u64;
        while let Ok(f) = mem.alloc_page_in_tier(PageKind::Anon, TierId::TOP) {
            mem.map(VPage::new(v), f).unwrap();
            an.on_page_mapped(&mut mem, f);
            frames.push(f);
            v += 1;
        }
        // The first three pages hint-faulted recently.
        for f in frames.iter().take(3) {
            an.on_hint_fault(&mut mem, *f, AccessKind::Read);
        }
        let out = an.on_pressure(&mut mem, TierId::TOP, Nanos::ZERO);
        assert!(out.demoted > 0);
        for f in frames.iter().take(3) {
            assert_eq!(mem.frame(*f).tier(), TierId::TOP, "faulted page protected");
        }
    }

    #[test]
    fn traits_match_table_one_row() {
        let (_, an) = setup();
        let t = an.traits();
        assert_eq!(t.generality, "Anonymous only");
        assert_eq!(t.page_access_tracking, "Software Page Fault");
        assert_eq!(t.key_insight, "NUMA balancing");
    }
}
