//! Offline, std-only stand-in for the subset of `proptest` this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` (and its `regex`/`bit-set` dependency tree) cannot be
//! fetched. This crate reimplements the pieces the test suites use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, ranges, tuples and
//!   [`strategy::Just`],
//! * [`collection::vec`], [`arbitrary::any`], [`prop_oneof!`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Semantics differ from real proptest in two deliberate ways: failures
//! panic immediately instead of returning `TestCaseError` (equivalent under
//! `cargo test`), and there is **no shrinking** — a failing case prints its
//! seed-derived inputs via the panic message only. Each test's case stream
//! is deterministic: seeded from the hash of the test function's name, so
//! failures reproduce across runs.

use rand::rngs::StdRng;

/// The RNG driving value generation (one per test function run).
pub type TestRng = StdRng;

/// Test-runner configuration (mirrors `proptest::test_runner`).
pub mod test_runner {
    /// Controls how many cases each property test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // simulation-driving suites fast while still exploring a
            // meaningful slice of the input space every run.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies (mirrors `proptest::strategy`).
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no shrink tree: a strategy is just a
    /// deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirrors
        /// `Strategy::prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Chains a value-dependent second strategy (mirrors
        /// `Strategy::prop_flat_map`).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (mirrors `Strategy::boxed`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value (mirrors `strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The [`Strategy::prop_flat_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support (mirrors `proptest::arbitrary`).
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Produces the canonical strategy for `T` (mirrors
    /// `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Length bounds accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Returns the inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace available via the prelude (mirrors how
/// `use proptest::prelude::*` exposes `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Everything a test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Each `fn name(pat in strategy, ..) { body }` item becomes a `#[test]`
/// that evaluates its strategies once and runs `body` for `cases`
/// deterministic inputs (seed = hash of the test name + case index).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::seed_rng(stringify!($name), case);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Builds the deterministic RNG for one test case. An implementation
/// detail of [`proptest!`]; public only so the macro expansion can reach
/// it.
#[doc(hidden)]
pub fn seed_rng(test_name: &str, case: u32) -> TestRng {
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    TestRng::seed_from_u64(h.finish() ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Asserts a condition inside a property test (panics on failure, unlike
/// real proptest's `Err` return — equivalent under `cargo test`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{ assert!($cond) }};
    ($cond:expr, $($fmt:tt)+) => {{ assert!($cond, $($fmt)+) }};
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{ assert_eq!($a, $b) }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{ assert_eq!($a, $b, $($fmt)+) }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{ assert_ne!($a, $b) }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{ assert_ne!($a, $b, $($fmt)+) }};
}

/// Uniform choice between strategies producing the same value type
/// (mirrors `proptest::prop_oneof!`; weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as $crate::strategy::BoxedStrategy<_>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u32),
        B,
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u64..100, (a, b) in (0u8..10, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(a < 10);
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|x| *x < 5));
        }

        #[test]
        fn oneof_and_map_cover_arms(ops in prop::collection::vec(
            prop_oneof![(0u32..3).prop_map(Op::A), Just(Op::B)], 1..50)) {
            for op in ops {
                match op {
                    Op::A(x) => prop_assert!(x < 3),
                    Op::B => {}
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honoured(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..10)
            .map(|c| {
                use crate::strategy::Strategy;
                (0u64..1000).generate(&mut crate::seed_rng("t", c))
            })
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| {
                use crate::strategy::Strategy;
                (0u64..1000).generate(&mut crate::seed_rng("t", c))
            })
            .collect();
        assert_eq!(a, b);
    }
}
