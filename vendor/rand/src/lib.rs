//! Offline, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` crate cannot be fetched. Every stochastic component in the
//! reproduction takes an explicit seed (DESIGN.md §4 "Determinism"), and the
//! workspace only ever uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! This crate reimplements exactly that surface on top of xoshiro256++
//! (public-domain reference by Blackman & Vigna), which has excellent
//! statistical quality for simulation workloads. The streams differ from
//! the real `rand`'s ChaCha-based `StdRng`, which is fine: nothing in the
//! repo depends on a specific stream, only on determinism per seed.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly "from the standard distribution"
/// (the `rand::distributions::Standard` analogue behind [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution (uniform for
    /// integers, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Converts 53 random bits into a float in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen_range`] can sample uniformly. The blanket
/// `Range<T>: SampleRange<T>` impls below mirror real `rand`'s shape so
/// type inference drives integer literals the same way.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }
        }
    )*};
}
impl_sample_uniform_float!(f64, f32);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Generator implementations (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha stream of the real `rand::rngs::StdRng`; see the
    /// crate docs for why that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1u16..=3);
            assert!((1..=3).contains(&w));
            let f = r.gen_range(0.0f64..100.0);
            assert!((0.0..100.0).contains(&f));
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn take<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut r = StdRng::seed_from_u64(3);
        assert!(take(&mut r) < 100);
    }
}
