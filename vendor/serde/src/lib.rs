//! Offline, dependency-free stand-in for the `serde` traits.
//!
//! The build environment has no network access to crates.io. The workspace
//! only uses `serde` as `#[derive(Serialize, Deserialize)]` annotations on
//! config/stat structs so downstream users *could* serialise them — no code
//! in-tree ever exercises a serialiser (there is no `serde_json` or similar
//! in the dependency set). This stub keeps those annotations compiling:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits with blanket impls,
//!   so any bound `T: Serialize` is trivially satisfied;
//! * the `derive` feature re-exports no-op derive macros from the sibling
//!   `serde_derive` stub.
//!
//! Swapping the real `serde` back in (in a networked build) requires no
//! source change anywhere in the workspace.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types so derive annotations and bounds compile unchanged.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented for
/// all sized types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
