//! Offline, std-only stand-in for the subset of `criterion` this
//! workspace's benches use.
//!
//! The build environment has no network access to crates.io. This stub
//! keeps `benches/*.rs` compiling and producing *useful* (if statistically
//! unsophisticated) numbers: each benchmark runs a short warm-up, then a
//! fixed number of timed iterations, and prints the mean wall-clock time
//! per iteration. There are no plots, no outlier analysis, and no saved
//! baselines — swap the real `criterion` back in (networked build) for
//! publication-grade statistics without changing bench source.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimiser from deleting benchmarked
/// work (mirrors `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs closures under a simple timing loop (mirrors
/// `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let total = start.elapsed();
        self.last_mean_ns = total.as_nanos() as f64 / self.samples as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark context handed to `criterion_group!` targets (mirrors
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        println!("{name:<40} {:>12}/iter", human(b.last_mean_ns));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }
}

/// A named set of benchmarks sharing configuration (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the target measurement time — accepted for API compatibility,
    /// ignored by this stub.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.parent.sample_size),
            last_mean_ns: 0.0,
        };
        f(&mut b, input);
        println!("  {:<38} {:>12}/iter", id.0, human(b.last_mean_ns));
        self
    }

    /// Runs one unparameterised benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.parent.sample_size),
            last_mean_ns: 0.0,
        };
        f(&mut b);
        println!("  {name:<38} {:>12}/iter", human(b.last_mean_ns));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter.
    pub fn from_parameter<D: Display>(param: D) -> Self {
        BenchmarkId(param.to_string())
    }

    /// An id with an explicit function name and parameter.
    pub fn new<D: Display>(name: &str, param: D) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Bundles bench functions into a runnable group (mirrors
/// `criterion::criterion_group!`; only the simple form is supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
