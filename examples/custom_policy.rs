//! Implementing your own tiering policy against the substrate API.
//!
//! This example writes a deliberately simple "promote on first touch"
//! policy — every lower-tier page that was referenced since the last scan
//! is migrated up, evicting round-robin when DRAM is full — and runs it
//! head-to-head with MULTI-CLOCK on the same access pattern, showing why
//! frequency-aware selection matters.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use mc_clock::IndexedList;
use mc_mem::{
    AccessKind, FrameId, MemConfig, MemorySystem, Nanos, PageKind, PolicyTraits, TickOutcome,
    TierId, TieringPolicy, Topology, VPage,
};
use multi_clock::{MultiClock, MultiClockConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Promotes any lower-tier page seen referenced — no frequency filter.
struct EagerPolicy {
    rings: Vec<IndexedList>,
}

impl EagerPolicy {
    fn new(topology: &Topology) -> Self {
        EagerPolicy {
            rings: (0..topology.tier_count())
                .map(|_| IndexedList::new())
                .collect(),
        }
    }
}

impl TieringPolicy for EagerPolicy {
    fn name(&self) -> &'static str {
        "eager"
    }

    fn traits(&self) -> PolicyTraits {
        PolicyTraits {
            name: "Eager",
            page_access_tracking: "Reference Bit",
            selection_promotion: "Recency (single observation)",
            selection_demotion: "Round robin",
            numa_aware: true,
            space_overhead: false,
            generality: "All",
            key_insight: "promote everything touched",
        }
    }

    fn on_page_mapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.rings[tier.index()].push_back(frame);
    }

    fn on_page_unmapped(&mut self, mem: &mut MemorySystem, frame: FrameId) {
        let tier = mem.frame(frame).tier();
        self.rings[tier.index()].remove(frame);
    }

    fn on_supervised_access(&mut self, _: &mut MemorySystem, _: FrameId, _: AccessKind) {}

    fn tick(&mut self, mem: &mut MemorySystem, _now: Nanos) -> TickOutcome {
        let mut out = TickOutcome::default();
        // Scan the PM ring; promote anything referenced.
        let pm = TierId::new(1);
        let len = self.rings[pm.index()].len();
        for _ in 0..len {
            let Some(frame) = self.rings[pm.index()].pop_front() else {
                break;
            };
            self.rings[pm.index()].push_back(frame);
            out.pages_scanned += 1;
            if mem.harvest_referenced(frame) && mem.frame(frame).migratable() {
                // Make room by demoting round-robin, then migrate.
                if mem.tier_free(TierId::TOP) == 0 {
                    if let Some(victim) = self.rings[TierId::TOP.index()].pop_front() {
                        if let Ok(nf) = mem.migrate(victim, pm) {
                            self.rings[pm.index()].push_back(nf);
                            out.demoted += 1;
                        } else {
                            self.rings[TierId::TOP.index()].push_back(victim);
                        }
                    }
                }
                self.rings[pm.index()].remove(frame);
                match mem.migrate(frame, TierId::TOP) {
                    Ok(nf) => {
                        self.rings[TierId::TOP.index()].push_back(nf);
                        out.promoted += 1;
                    }
                    Err(_) => self.rings[pm.index()].push_back(frame),
                }
            }
        }
        out
    }

    fn on_pressure(&mut self, _: &mut MemorySystem, _: TierId, _: Nanos) -> TickOutcome {
        TickOutcome::default()
    }

    fn tick_interval(&self) -> Option<Nanos> {
        Some(Nanos::from_secs(1))
    }
}

/// Drives a synthetic skewed workload: a small hot set plus a cold sweep
/// that makes one-touch pages look attractive to an eager policy.
fn drive(policy: &mut dyn TieringPolicy, mem: &mut MemorySystem) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(7);
    // Map 600 pages: DRAM (256) fills first, the rest land in PM.
    let mut pages = Vec::new();
    for v in 0..600u64 {
        let frame = mem.alloc_page(PageKind::Anon).expect("fits");
        mem.map(VPage::new(v), frame).unwrap();
        policy.on_page_mapped(mem, frame);
        pages.push(VPage::new(v));
    }
    // Hot set: 64 PM-resident pages; plus a cold scan over everything.
    let hot: Vec<VPage> = (300..364).map(VPage::new).collect();
    for second in 1..=30u64 {
        for h in &hot {
            for _ in 0..4 {
                mem.access(*h, AccessKind::Read).unwrap();
            }
        }
        // One-touch sweep over 200 random cold pages.
        for _ in 0..200 {
            let p = pages[rng.gen_range(0..pages.len())];
            mem.access(p, AccessKind::Read).unwrap();
        }
        policy.tick(mem, Nanos::from_secs(second));
    }
    // Score: how many hot pages ended up in DRAM, and total migrations.
    let resident = hot
        .iter()
        .filter(|p| {
            mem.translate(**p)
                .map(|f| mem.frame(f).tier().is_top())
                .unwrap_or(false)
        })
        .count() as u64;
    (resident, mem.stats().promotions + mem.stats().demotions)
}

fn main() {
    let run = |name: &str, make: &dyn Fn(&Topology) -> Box<dyn TieringPolicy>| {
        let mut mem = MemorySystem::new(MemConfig::two_tier(256, 2048));
        let mut policy = make(mem.topology());
        let (resident, migrations) = drive(policy.as_mut(), &mut mem);
        println!("{name:<12} hot pages in DRAM: {resident:>2}/64   total migrations: {migrations}");
    };
    run("eager", &|t| Box::new(EagerPolicy::new(t)));
    run("multi-clock", &|t| {
        Box::new(MultiClock::new(MultiClockConfig::default(), t))
    });
    println!("\nthe eager policy chases one-touch pages and churns; MULTI-CLOCK's");
    println!("recency+frequency ladder promotes the stable hot set with far fewer");
    println!("migrations — the paper's core argument in one example.");
}
