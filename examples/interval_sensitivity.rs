//! The paper's §V-E sensitivity study in miniature: sweep the `kpromoted`
//! scan interval and watch throughput peak at the 1-(paper-)second
//! operating point.
//!
//! ```sh
//! cargo run --release --example interval_sensitivity
//! ```

use mc_sim::experiments::{Experiment, Scale};
use mc_sim::SystemKind;
use mc_workloads::ycsb::YcsbWorkload;

fn main() {
    let scale = Scale::tiny();
    let base = Experiment::ycsb(YcsbWorkload::A)
        .system(SystemKind::Static)
        .scale(&scale)
        .run()
        .expect("no obs artifacts requested")
        .ops_per_sec;
    println!("YCSB-A, MULTI-CLOCK, throughput normalised to static tiering:\n");
    println!(
        "{:<22} {:>10} {:>12}",
        "interval (paper time)", "norm tput", "promotions"
    );
    for (factor, label) in [
        (0.1, "100ms"),
        (0.25, "250ms"),
        (0.5, "500ms"),
        (1.0, "1s"),
        (5.0, "5s"),
        (60.0, "60s"),
    ] {
        let r = Experiment::ycsb(YcsbWorkload::A)
            .scale(&scale)
            .interval(scale.paper_interval(factor))
            .run()
            .expect("no obs artifacts requested");
        println!(
            "{:<22} {:>10.2} {:>12}",
            label,
            r.ops_per_sec / base,
            r.promotions
        );
    }
    println!("\nexpected: a sweet spot near 1s; little difference beyond 5s because");
    println!("the daemon reacts too slowly to matter (paper Fig. 10).");
}
