//! Record a YCSB run as a page-access trace (the paper's §II-A
//! methodology), then replay the *same* trace against static tiering and
//! MULTI-CLOCK — an apples-to-apples comparison with identical access
//! sequences.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use mc_mem::Nanos;
use mc_sim::{SimConfig, Simulation, SystemKind};
use mc_trace::{replay, Heatmap, Recorder};
use mc_workloads::ycsb::{YcsbClient, YcsbConfig, YcsbWorkload};
use mc_workloads::SimpleMemory;

fn main() {
    // 1. Record workload A on a plain (untimed-tiering) memory.
    let mut rec = Recorder::new(SimpleMemory::new());
    let mut client = YcsbClient::load(
        YcsbConfig {
            records: 2_000,
            value_size: 1024,
            op_compute: Nanos::from_nanos(500),
            ..Default::default()
        },
        &mut rec,
    );
    client.run(YcsbWorkload::A, &mut rec, 200_000);
    let trace = rec.finish();
    println!(
        "recorded {} events over {} unique pages ({:.1}s of virtual time)",
        trace.len(),
        trace.unique_pages(),
        trace.duration().as_secs_f64()
    );

    // 2. What does the access pattern look like? (Fig. 1 on a real trace.)
    let h = Heatmap::build(&trace, Nanos::from_millis(20));
    let totals = h.totals();
    let hot = totals.iter().filter(|t| **t > 200).count();
    println!(
        "heatmap: {} windows x {} pages; {} pages are hot (>200 touches)",
        h.counts().len(),
        h.pages().len(),
        hot
    );
    let (once, multi) = h.once_vs_multi();
    println!(
        "Fig. 2 statistic on this trace: once-accessed pages -> {once:.2} next-window \
         accesses, multi-accessed -> {multi:.2}"
    );

    // 3. Replay the identical trace against both systems.
    for system in [SystemKind::Static, SystemKind::MultiClock] {
        let mut cfg = SimConfig::new(system, 512, 4096);
        cfg.scan_interval = Nanos::from_millis(5);
        cfg.scan_batch = 4096;
        let mut sim = Simulation::new(cfg);
        let stats = replay(&trace, &mut sim);
        println!(
            "{:<12} replayed {} events in {:.3}s virtual ({} promotions)",
            system.label(),
            stats.events_replayed,
            stats.elapsed.as_secs_f64(),
            sim.metrics().total_promotions(),
        );
    }
    println!("\nsame accesses, different placement: the MULTI-CLOCK replay should");
    println!("finish sooner once its promotions pull the hot pages into DRAM.");
}
