//! GAPBS graph analytics over tiered memory: build an R-MAT graph whose
//! footprint exceeds DRAM, then run PageRank under static tiering and
//! MULTI-CLOCK.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use mc_sim::experiments::{Experiment, Scale};
use mc_sim::SystemKind;
use mc_workloads::graph::{Csr, GraphConfig, Kernel};
use mc_workloads::SimpleMemory;

fn main() {
    let scale = Scale::tiny();
    // First show what the graph looks like (on a plain memory, no tiers).
    let gcfg = GraphConfig {
        scale: scale.graph_scale,
        degree: scale.graph_degree,
        symmetric: true,
        max_weight: 255,
        seed: scale.seed,
        arena_slots: 8,
    };
    let mut plain = SimpleMemory::new();
    let csr = Csr::build(&gcfg, &mut plain);
    println!(
        "R-MAT graph: 2^{} = {} vertices, {} directed edges, {:.1} MiB footprint",
        gcfg.scale,
        csr.num_vertices(),
        csr.num_edges(),
        csr.footprint_bytes() as f64 / (1024.0 * 1024.0),
    );
    let (dram, _) = scale.graph_machine();
    println!(
        "tiered machine DRAM: {:.1} MiB — the graph does not fit\n",
        dram as f64 * 4.0 / 1024.0
    );

    for kernel in [Kernel::Pr, Kernel::Bfs, Kernel::Cc] {
        let stat = Experiment::gapbs(kernel)
            .system(SystemKind::Static)
            .scale(&scale)
            .run()
            .expect("no obs artifacts requested");
        let mc = Experiment::gapbs(kernel)
            .scale(&scale)
            .run()
            .expect("no obs artifacts requested");
        println!(
            "{:<4} static {:>8.2} ms/trial | MULTI-CLOCK {:>8.2} ms/trial ({:.2}x, {} promotions)",
            kernel.label(),
            stat.trial_time.as_nanos() as f64 / 1e6,
            mc.trial_time.as_nanos() as f64 / 1e6,
            mc.trial_time.as_nanos() as f64 / stat.trial_time.as_nanos() as f64,
            mc.promotions,
        );
    }
    println!("\nGains are modest by design: graph workloads allocate their hottest");
    println!("(vertex-indexed) data first, so static placement is already good —");
    println!("exactly the paper's §V-C.1 observation.");
}
