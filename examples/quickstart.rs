//! Quickstart: build a two-tier machine, run MULTI-CLOCK against a toy
//! access pattern, and watch a hot page migrate from persistent memory to
//! DRAM.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mc_mem::{AccessKind, MemConfig, MemorySystem, Nanos, PageKind, TierId, TieringPolicy, VPage};
use multi_clock::{MultiClock, MultiClockConfig};

fn main() -> Result<(), mc_mem::MemError> {
    // A small machine: 256 pages of DRAM, 2048 pages of PM.
    let mut mem = MemorySystem::new(MemConfig::two_tier(256, 2048));
    let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());

    println!("machine: {} tiers", mem.topology().tier_count());
    for tier in mem.topology().tiers() {
        println!("  {} = {} ({} pages)", tier.id(), tier.kind(), tier.pages());
    }

    // Fault one page directly into the PM tier and track it.
    let frame = mem.alloc_page_in_tier(PageKind::Anon, TierId::new(1))?;
    let page = VPage::new(42);
    mem.map(page, frame)?;
    mc.on_page_mapped(&mut mem, frame);
    println!(
        "\npage {page} starts in {} (state: {:?})",
        mem.frame(frame).tier(),
        mc.state_of(frame).unwrap()
    );

    // Touch the page every scan interval: the reference bit is harvested
    // by kpromoted and the page climbs the Fig. 4 ladder —
    // inactive -> active -> promote -> migrated to DRAM.
    for second in 1..=4u64 {
        mem.access(page, AccessKind::Read)?;
        let out = mc.tick(&mut mem, Nanos::from_secs(second));
        let f = mem.translate(page).expect("still mapped");
        println!(
            "after scan {second}: tier={}, state={}, promoted so far={}",
            mem.frame(f).tier(),
            mc.state_of(f).unwrap(),
            out.promoted,
        );
    }

    let f = mem.translate(page).unwrap();
    assert_eq!(mem.frame(f).tier(), TierId::TOP);
    println!("\nthe hot page now lives in DRAM — that is MULTI-CLOCK's job.");
    println!(
        "stats: {} promotions, {} pages scanned, {} kpromoted runs",
        mc.stats().promotions,
        mc.stats().pages_scanned,
        mc.stats().ticks,
    );
    Ok(())
}
