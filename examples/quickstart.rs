//! Quickstart: build a two-tier machine, run MULTI-CLOCK against a toy
//! access pattern, and watch a hot page migrate from persistent memory to
//! DRAM.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Pass `--obs <dir>` to additionally run the full simulation engine with
//! observability on and write the run's tracepoint events (`events.jsonl`),
//! per-tick counter series (`ticks.csv`) and human-readable run report
//! (`report.txt`) into `<dir>`:
//!
//! ```sh
//! cargo run --release --example quickstart -- --obs /tmp/mc-obs
//! cargo run --release -p mc-obs --bin mc-obs-report -- /tmp/mc-obs
//! ```

use mc_mem::{AccessKind, MemConfig, MemorySystem, Nanos, PageKind, TierId, TieringPolicy, VPage};
use mc_sim::{ObsConfig, SimConfig, Simulation, SystemKind};
use mc_workloads::Memory;
use multi_clock::{MultiClock, MultiClockConfig};
use std::path::Path;

/// Runs a short MULTI-CLOCK simulation with observability enabled and
/// writes the artifact directory `mc-obs-report` consumes.
fn run_observed(dir: &Path) -> std::io::Result<()> {
    let mut cfg = SimConfig::new(SystemKind::MultiClock, 64, 512);
    cfg.instrument.obs = ObsConfig::on();
    let mut sim = Simulation::new(cfg);

    // Fill DRAM with one-touch pages, then hammer the first PM-resident
    // page so it climbs the Fig. 4 ladder and gets promoted.
    let page_size = mc_mem::PAGE_SIZE as u64;
    let region = sim.mmap(mc_mem::PAGE_SIZE * 4096, PageKind::Anon);
    let mut i = 0u64;
    loop {
        let addr = region.add(i * page_size);
        sim.read(addr, 8);
        let f = sim.mem().translate(addr.page()).expect("mapped");
        if sim.mem().frame(f).tier() != TierId::TOP {
            break;
        }
        i += 1;
    }
    let hot = region.add(i * page_size);
    for _ in 0..80 {
        sim.read(hot, 8);
        sim.compute(Nanos::from_millis(100));
    }
    sim.finish();

    sim.write_obs(dir)?;
    println!(
        "observability run: {} promotions",
        sim.metrics().total_promotions()
    );
    println!("artifacts written to {}:", dir.display());
    println!("  events.jsonl  - structured tracepoint events");
    println!("  ticks.csv     - per-tick counter time series");
    println!("  report.txt    - human-readable run report");
    println!(
        "validate/summarise with: cargo run -p mc-obs --bin mc-obs-report -- {}",
        dir.display()
    );
    Ok(())
}

fn main() -> Result<(), mc_mem::MemError> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--obs") {
        let dir = args
            .get(i + 1)
            .map(Path::new)
            .unwrap_or(Path::new("mc-obs-out"));
        run_observed(dir).expect("obs artifacts are writable");
        return Ok(());
    }
    // A small machine: 256 pages of DRAM, 2048 pages of PM.
    let mut mem = MemorySystem::new(MemConfig::two_tier(256, 2048));
    let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());

    println!("machine: {} tiers", mem.topology().tier_count());
    for tier in mem.topology().tiers() {
        println!("  {} = {} ({} pages)", tier.id(), tier.kind(), tier.pages());
    }

    // Fault one page directly into the PM tier and track it.
    let frame = mem.alloc_page_in_tier(PageKind::Anon, TierId::new(1))?;
    let page = VPage::new(42);
    mem.map(page, frame)?;
    mc.on_page_mapped(&mut mem, frame);
    println!(
        "\npage {page} starts in {} (state: {:?})",
        mem.frame(frame).tier(),
        mc.state_of(frame).unwrap()
    );

    // Touch the page every scan interval: the reference bit is harvested
    // by kpromoted and the page climbs the Fig. 4 ladder —
    // inactive -> active -> promote -> migrated to DRAM.
    for second in 1..=4u64 {
        mem.access(page, AccessKind::Read)?;
        let out = mc.tick(&mut mem, Nanos::from_secs(second));
        let f = mem.translate(page).expect("still mapped");
        println!(
            "after scan {second}: tier={}, state={}, promoted so far={}",
            mem.frame(f).tier(),
            mc.state_of(f).unwrap(),
            out.promoted,
        );
    }

    let f = mem.translate(page).unwrap();
    assert_eq!(mem.frame(f).tier(), TierId::TOP);
    println!("\nthe hot page now lives in DRAM — that is MULTI-CLOCK's job.");
    println!(
        "stats: {} promotions, {} pages scanned, {} kpromoted runs",
        mc.stats().promotions,
        mc.stats().pages_scanned,
        mc.stats().ticks,
    );
    Ok(())
}
