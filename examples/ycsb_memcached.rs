//! The paper's headline experiment in miniature: YCSB workload A over a
//! memcached-like store on a DRAM+PM machine, comparing static tiering
//! with MULTI-CLOCK.
//!
//! ```sh
//! cargo run --release --example ycsb_memcached
//! ```

use mc_sim::experiments::{Experiment, Scale};
use mc_sim::SystemKind;
use mc_workloads::ycsb::YcsbWorkload;

fn main() {
    let scale = Scale::tiny();
    println!(
        "machine: {} MiB DRAM + {} MiB PM; {} records of {} B",
        scale.dram_pages * 4 / 1024,
        scale.pm_pages * 4 / 1024,
        scale.records,
        scale.value_size
    );
    println!("running YCSB-A (50% reads / 50% updates, zipfian)...\n");

    let mut base = None;
    for system in [
        SystemKind::Static,
        SystemKind::MultiClock,
        SystemKind::Nimble,
    ] {
        let r = Experiment::ycsb(YcsbWorkload::A)
            .system(system)
            .scale(&scale)
            .run()
            .expect("no obs artifacts requested");
        let norm = match base {
            None => {
                base = Some(r.ops_per_sec);
                1.0
            }
            Some(b) => r.ops_per_sec / b,
        };
        println!(
            "{:<12} {:>9.0} ops/s  ({:.2}x static)   promotions={:<6} DRAM share={}",
            system.label(),
            r.ops_per_sec,
            norm,
            r.promotions,
            r.top_tier_share
                .map_or("-".into(), |p| format!("{:.0}%", p * 100.0)),
        );
    }
    println!("\nMULTI-CLOCK should beat static tiering by promoting the zipfian");
    println!("hot set into DRAM, and beat Nimble through better page selection.");
}
