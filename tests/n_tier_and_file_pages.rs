//! Integration tests for the DESIGN.md extensions: N-tier generalisation
//! and file-backed page handling end to end.

use mc_mem::{Nanos, PageKind, TierId, PAGE_SIZE};
use mc_sim::{SimConfig, Simulation, SystemKind};
use mc_workloads::Memory;

#[test]
fn three_tier_machine_promotes_hot_pages_toward_hbm() {
    let mut cfg = SimConfig::three_tier(SystemKind::MultiClock, 32, 128, 1024);
    cfg.scan_interval = Nanos::from_millis(5);
    cfg.scan_batch = 4096;
    let mut sim = Simulation::new(cfg);

    // Fill HBM and DRAM with one-touch pages; the last page lands in PM.
    let region = sim.mmap(PAGE_SIZE * 2048, PageKind::Anon);
    let mut i = 0u64;
    loop {
        let addr = region.add(i * PAGE_SIZE as u64);
        sim.read(addr, 8);
        let f = sim.mem().translate(addr.page()).unwrap();
        if sim.mem().frame(f).tier() == TierId::new(2) {
            break;
        }
        i += 1;
        assert!(i < 300, "tiers must fill");
    }
    let hot = region.add(i * PAGE_SIZE as u64);

    // Keep the PM page hot across many intervals.
    for _ in 0..60 {
        sim.read(hot, 8);
        sim.compute(Nanos::from_millis(5));
    }
    let f = sim.mem().translate(hot.page()).unwrap();
    assert!(
        sim.mem().frame(f).tier() < TierId::new(2),
        "hot page must climb out of the lowest tier; got {}",
        sim.mem().frame(f).tier()
    );
    assert!(sim.metrics().total_promotions() >= 1);
}

#[test]
fn three_tier_demotion_cascades_downwards() {
    let mut cfg = SimConfig::three_tier(SystemKind::MultiClock, 32, 64, 512);
    cfg.scan_interval = Nanos::from_millis(5);
    let mut sim = Simulation::new(cfg);
    // Allocate more than HBM+DRAM can hold: the engine's fault path and
    // the policy's reclaim must cascade cold pages down without panicking.
    let region = sim.mmap(PAGE_SIZE * 400, PageKind::Anon);
    for i in 0..400u64 {
        sim.read(region.add(i * PAGE_SIZE as u64), 8);
    }
    sim.compute(Nanos::from_millis(50));
    // All three tiers hold pages.
    let mut per_tier = [0usize; 3];
    for i in 0..400u64 {
        let f = sim
            .mem()
            .translate(region.add(i * PAGE_SIZE as u64).page())
            .unwrap();
        per_tier[sim.mem().frame(f).tier().index()] += 1;
    }
    assert!(per_tier[0] > 0, "HBM used: {per_tier:?}");
    assert!(per_tier[2] > 0, "PM used: {per_tier:?}");
    assert_eq!(per_tier.iter().sum::<usize>(), 400);
}

#[test]
fn file_backed_pages_live_on_file_lists_and_tier_normally() {
    let mut cfg = SimConfig::new(SystemKind::MultiClock, 64, 512);
    cfg.scan_interval = Nanos::from_millis(5);
    cfg.scan_batch = 4096;
    let mut sim = Simulation::new(cfg);

    // An anonymous heap and a file mapping (e.g. a mapped index file).
    let heap = sim.mmap(PAGE_SIZE * 64, PageKind::Anon);
    let file = sim.mmap(PAGE_SIZE * 256, PageKind::File);
    for i in 0..64u64 {
        sim.write(heap.add(i * PAGE_SIZE as u64), 8);
    }
    for i in 0..256u64 {
        sim.read(file.add(i * PAGE_SIZE as u64), 8);
    }
    // A hot file page in PM gets promoted like any anon page ("MULTI-CLOCK
    // is capable of managing all types of pages", §VI).
    let mut hot_file = None;
    for i in 0..256u64 {
        let addr = file.add(i * PAGE_SIZE as u64);
        let f = sim.mem().translate(addr.page()).unwrap();
        if sim.mem().frame(f).tier() != TierId::TOP {
            assert_eq!(sim.mem().frame(f).kind(), PageKind::File);
            hot_file = Some(addr);
            break;
        }
    }
    let hot_file = hot_file.expect("file region spills out of DRAM");
    for _ in 0..60 {
        sim.read(hot_file, 8);
        sim.compute(Nanos::from_millis(5));
    }
    let f = sim.mem().translate(hot_file.page()).unwrap();
    assert_eq!(
        sim.mem().frame(f).tier(),
        TierId::TOP,
        "hot file page promoted"
    );
    assert_eq!(sim.mem().frame(f).kind(), PageKind::File);
}

#[test]
fn clean_file_pages_evict_cheaply_under_terminal_pressure() {
    // Overcommit a tiny machine with file pages: the lowest tier's
    // eviction path drops clean file pages without swap cost.
    let mut cfg = SimConfig::new(SystemKind::MultiClock, 16, 64);
    cfg.scan_interval = Nanos::from_millis(5);
    let mut sim = Simulation::new(cfg);
    let file = sim.mmap(PAGE_SIZE * 200, PageKind::File);
    for i in 0..200u64 {
        sim.read(file.add(i * PAGE_SIZE as u64), 8);
    }
    assert!(
        sim.mem().stats().evictions > 0,
        "overcommit forces eviction"
    );
    // Evicted clean pages fault back in on next touch.
    for i in 0..200u64 {
        sim.read(file.add(i * PAGE_SIZE as u64), 8);
    }
    assert!(sim.mem().stats().swap_ins > 0);
}
