//! Cross-crate integration tests: full workloads over the full engine,
//! asserting the paper's qualitative results hold end to end.

use mc_mem::Nanos;
use mc_sim::experiments::{Experiment, RunOutcome, Scale};
use mc_sim::SystemKind;
use mc_workloads::graph::Kernel;
use mc_workloads::ycsb::YcsbWorkload;

fn scale() -> Scale {
    Scale::tiny()
}

fn run_ycsb(system: SystemKind, workload: YcsbWorkload, s: &Scale, interval: Nanos) -> RunOutcome {
    Experiment::ycsb(workload)
        .system(system)
        .scale(s)
        .interval(interval)
        .run()
        .expect("no obs artifacts requested")
}

fn run_gapbs(system: SystemKind, kernel: Kernel, s: &Scale, interval: Nanos) -> RunOutcome {
    Experiment::gapbs(kernel)
        .system(system)
        .scale(s)
        .interval(interval)
        .run()
        .expect("no obs artifacts requested")
}

#[test]
fn multi_clock_beats_static_on_ycsb_a() {
    let s = scale();
    let stat = run_ycsb(SystemKind::Static, YcsbWorkload::A, &s, s.scan_interval());
    let mc = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::A,
        &s,
        s.scan_interval(),
    );
    assert!(
        mc.ops_per_sec > stat.ops_per_sec * 1.10,
        "paper: MULTI-CLOCK beats static by 20-132%; got {:.0} vs {:.0}",
        mc.ops_per_sec,
        stat.ops_per_sec
    );
}

#[test]
fn multi_clock_beats_nimble_on_ycsb_a() {
    let s = scale();
    let nim = run_ycsb(SystemKind::Nimble, YcsbWorkload::A, &s, s.scan_interval());
    let mc = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::A,
        &s,
        s.scan_interval(),
    );
    assert!(
        mc.ops_per_sec > nim.ops_per_sec,
        "paper: MULTI-CLOCK beats Nimble by 9-36%; got {:.0} vs {:.0}",
        mc.ops_per_sec,
        nim.ops_per_sec
    );
}

#[test]
fn at_cpm_is_far_below_static() {
    let s = scale();
    let stat = run_ycsb(SystemKind::Static, YcsbWorkload::A, &s, s.scan_interval());
    let cpm = run_ycsb(SystemKind::AtCpm, YcsbWorkload::A, &s, s.scan_interval());
    assert!(
        cpm.ops_per_sec < stat.ops_per_sec * 0.6,
        "paper: AT-CPM loses 260-677% to MULTI-CLOCK (far below static); got {:.0} vs {:.0}",
        cpm.ops_per_sec,
        stat.ops_per_sec
    );
    assert!(cpm.hint_faults > 0, "CPM must be paying for hint faults");
}

#[test]
fn at_opm_sits_between_cpm_and_multi_clock() {
    let s = scale();
    let cpm = run_ycsb(SystemKind::AtCpm, YcsbWorkload::A, &s, s.scan_interval());
    let opm = run_ycsb(SystemKind::AtOpm, YcsbWorkload::A, &s, s.scan_interval());
    let mc = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::A,
        &s,
        s.scan_interval(),
    );
    assert!(opm.ops_per_sec > cpm.ops_per_sec, "OPM beats CPM");
    assert!(mc.ops_per_sec > opm.ops_per_sec, "MULTI-CLOCK beats OPM");
}

#[test]
fn multi_clock_dram_share_exceeds_static() {
    let s = scale();
    let stat = run_ycsb(SystemKind::Static, YcsbWorkload::A, &s, s.scan_interval());
    let mc = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::A,
        &s,
        s.scan_interval(),
    );
    let (a, b) = (
        stat.top_tier_share.expect("accesses happened"),
        mc.top_tier_share.expect("accesses happened"),
    );
    assert!(
        b > a + 0.10,
        "hot set must concentrate in DRAM: {b:.2} vs {a:.2}"
    );
}

#[test]
fn reaccess_rate_of_multi_clock_promotions_is_higher_than_nimbles() {
    // The Fig. 9 claim: MULTI-CLOCK promotes fewer but better pages.
    let s = scale();
    let mc = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::A,
        &s,
        s.scan_interval(),
    );
    let nim = run_ycsb(SystemKind::Nimble, YcsbWorkload::A, &s, s.scan_interval());
    let (m, n) = (
        mc.reaccess_pct.expect("MC promoted pages"),
        nim.reaccess_pct.expect("Nimble promoted pages"),
    );
    assert!(m > n, "MC re-access {m:.1}% must exceed Nimble {n:.1}%");
}

#[test]
fn memory_mode_and_multi_clock_are_competitive() {
    // Fig. 7: MULTI-CLOCK within a small margin of Memory-mode on YCSB.
    let s = scale().memory_mode();
    let mm = run_ycsb(
        SystemKind::MemoryMode,
        YcsbWorkload::C,
        &s,
        s.scan_interval(),
    );
    let mc = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::C,
        &s,
        s.scan_interval(),
    );
    let ratio = mc.ops_per_sec / mm.ops_per_sec;
    assert!(
        (0.8..=1.3).contains(&ratio),
        "paper: within -2%..+9%; got ratio {ratio:.2}"
    );
}

#[test]
fn gapbs_static_is_competitive_and_multi_clock_never_collapses() {
    // Fig. 6: GAPBS gains are small; MULTI-CLOCK must never be much worse
    // than static on any kernel.
    let s = scale();
    for kernel in [Kernel::Bfs, Kernel::Pr, Kernel::Cc] {
        let stat = run_gapbs(SystemKind::Static, kernel, &s, s.scan_interval());
        let mc = run_gapbs(SystemKind::MultiClock, kernel, &s, s.scan_interval());
        let norm = mc.trial_time.as_nanos() as f64 / stat.trial_time.as_nanos() as f64;
        assert!(
            norm < 1.15,
            "{}: MULTI-CLOCK must stay within 15% of static, got {norm:.2}",
            kernel.label()
        );
    }
}

#[test]
fn one_second_interval_beats_sixty_seconds() {
    // Fig. 10's right edge: a 60 s interval reacts too slowly to help.
    let s = scale();
    let at_1s = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::A,
        &s,
        s.paper_interval(1.0),
    );
    let at_60s = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::A,
        &s,
        s.paper_interval(60.0),
    );
    assert!(at_1s.ops_per_sec > at_60s.ops_per_sec);
    assert!(at_60s.promotions < at_1s.promotions);
}

#[test]
fn headline_result_is_seed_stable() {
    // The MC > static ordering must not be an artifact of one RNG stream.
    for seed in [7u64, 1234, 987654] {
        let mut s = scale();
        s.seed = seed;
        let stat = run_ycsb(SystemKind::Static, YcsbWorkload::A, &s, s.scan_interval());
        let mc = run_ycsb(
            SystemKind::MultiClock,
            YcsbWorkload::A,
            &s,
            s.scan_interval(),
        );
        assert!(
            mc.ops_per_sec > stat.ops_per_sec * 1.05,
            "seed {seed}: MC {:.0} vs static {:.0}",
            mc.ops_per_sec,
            stat.ops_per_sec
        );
    }
}

#[test]
fn determinism_same_seed_same_result() {
    let s = scale();
    let a = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::B,
        &s,
        s.scan_interval(),
    );
    let b = run_ycsb(
        SystemKind::MultiClock,
        YcsbWorkload::B,
        &s,
        s.scan_interval(),
    );
    assert_eq!(a.ops_per_sec, b.ops_per_sec);
    assert_eq!(a.promotions, b.promotions);
    assert_eq!(a.demotions, b.demotions);
}

#[test]
fn workload_w_writes_suffer_most_in_pm_so_tiering_pays_off() {
    // W is 100% writes; PM write bandwidth is the worst case, so the gap
    // between static and MULTI-CLOCK should be at least as large as on
    // the read-only workload C.
    let s = scale();
    let gain = |w: YcsbWorkload| {
        let stat = run_ycsb(SystemKind::Static, w, &s, s.scan_interval());
        let mc = run_ycsb(SystemKind::MultiClock, w, &s, s.scan_interval());
        mc.ops_per_sec / stat.ops_per_sec
    };
    let w = gain(YcsbWorkload::W);
    assert!(w > 1.05, "W gain {w:.2} must be material");
}
