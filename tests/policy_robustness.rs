//! Policy-generic robustness: every system survives arbitrary access
//! patterns with consistent accounting and an intact data plane.

use mc_mem::{Nanos, PageKind, TierId, PAGE_SIZE};
use mc_sim::{SimConfig, Simulation, SystemKind};
use mc_workloads::Memory;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ALL_SYSTEMS: [SystemKind; 9] = [
    SystemKind::Static,
    SystemKind::MultiClock,
    SystemKind::Nimble,
    SystemKind::AtCpm,
    SystemKind::AtOpm,
    SystemKind::AutoNuma,
    SystemKind::Amp,
    SystemKind::MemoryMode,
    SystemKind::OracleLru,
];

/// Drives one system with a seeded random mix of reads, writes,
/// byte-writes and compute, then checks global invariants.
fn drive(system: SystemKind, seed: u64, heavy: bool) {
    let mut cfg = SimConfig::new(system, 64, 512);
    cfg.scan_interval = Nanos::from_millis(2);
    cfg.scan_batch = 2048;
    let mut sim = Simulation::new(cfg);
    let pages = if heavy { 700 } else { 300 }; // heavy overcommits DRAM+PM reserves
    let region = sim.mmap(PAGE_SIZE * pages, PageKind::Anon);
    let file = sim.mmap(PAGE_SIZE * 32, PageKind::File);
    let mut rng = StdRng::seed_from_u64(seed);
    // A golden record for data-plane verification.
    let golden_addr = region.add((pages as u64 / 2) * PAGE_SIZE as u64);
    let golden = [seed as u8; 64];
    sim.write_bytes(golden_addr, &golden);

    for step in 0..3_000u32 {
        match rng.gen_range(0..100) {
            0..=59 => {
                let p = rng.gen_range(0..pages as u64);
                sim.read(region.add(p * PAGE_SIZE as u64), rng.gen_range(1..256));
            }
            60..=84 => {
                let p = rng.gen_range(0..pages as u64);
                // Never clobber the golden page.
                if region.add(p * PAGE_SIZE as u64).page() != golden_addr.page() {
                    sim.write(region.add(p * PAGE_SIZE as u64), rng.gen_range(1..4096));
                }
            }
            85..=94 => {
                sim.read(file.add(rng.gen_range(0..32) * PAGE_SIZE as u64), 8);
            }
            _ => sim.compute(Nanos::from_micros(rng.gen_range(1..500))),
        }
        // Keep the golden page warm so the lowest-tier eviction path
        // never drops it silently without swap bookkeeping.
        if step % 64 == 0 {
            let mut buf = [0u8; 64];
            sim.read_bytes(golden_addr, &mut buf);
            assert_eq!(buf, golden, "{system:?}: data plane corrupted at {step}");
        }
    }

    // Accounting: live pages == page-table entries == used frames.
    if system != SystemKind::MemoryMode {
        let stats = sim.mem().stats();
        let live = stats.allocs - stats.frees;
        let used: usize = (0..sim.mem().topology().tier_count())
            .map(|t| sim.mem().tier_used(TierId::new(t as u8)))
            .sum();
        assert_eq!(live as usize, used, "{system:?}: frame accounting drifted");
        assert_eq!(sim.mem().page_table().len(), used, "{system:?}: PT drifted");
        // Every migration was balanced by events.
        assert_eq!(
            stats.promotions + stats.demotions,
            sim.metrics().total_promotions() + sim.metrics().total_demotions(),
            "{system:?}: metrics missed migrations"
        );
    }
    // Virtual time moved forward.
    assert!(sim.now() > Nanos::ZERO);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn every_policy_survives_random_driving(seed in 0u64..10_000) {
        for system in ALL_SYSTEMS {
            drive(system, seed, false);
        }
    }
}

#[test]
fn every_policy_survives_overcommit() {
    // Footprint larger than DRAM and deep into PM: the reclaim and
    // eviction paths of every policy get exercised hard.
    for system in ALL_SYSTEMS {
        if system == SystemKind::MemoryMode {
            continue; // memory-mode has no frame accounting to overcommit
        }
        drive(system, 99, true);
    }
}
