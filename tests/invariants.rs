//! Property-based invariant tests (proptest) across the stack.

use mc_clock::{balance, IndexedList, LruOrder};
use mc_mem::{
    AccessKind, FrameId, MemConfig, MemorySystem, Nanos, PageKind, TierId, TieringPolicy, VPage,
};
use mc_workloads::dist::{Latest, ScrambledZipfian, Zipfian};
use multi_clock::{MultiClock, MultiClockConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// IndexedList vs a reference deque implementation.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ListOp {
    PushBack(u32),
    PushFront(u32),
    Remove(u32),
    PopFront,
    PopBack,
    MoveToBack(u32),
}

fn list_op() -> impl Strategy<Value = ListOp> {
    prop_oneof![
        (0u32..64).prop_map(ListOp::PushBack),
        (0u32..64).prop_map(ListOp::PushFront),
        (0u32..64).prop_map(ListOp::Remove),
        Just(ListOp::PopFront),
        Just(ListOp::PopBack),
        (0u32..64).prop_map(ListOp::MoveToBack),
    ]
}

proptest! {
    #[test]
    fn indexed_list_matches_reference_model(ops in prop::collection::vec(list_op(), 1..200)) {
        let mut sys = IndexedList::new();
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                ListOp::PushBack(x) => {
                    if !model.contains(&x) {
                        sys.push_back(FrameId::new(x));
                        model.push_back(x);
                    }
                }
                ListOp::PushFront(x) => {
                    if !model.contains(&x) {
                        sys.push_front(FrameId::new(x));
                        model.push_front(x);
                    }
                }
                ListOp::Remove(x) => {
                    let was = model.iter().position(|v| *v == x);
                    let got = sys.remove(FrameId::new(x));
                    prop_assert_eq!(got, was.is_some());
                    if let Some(i) = was {
                        model.remove(i);
                    }
                }
                ListOp::PopFront => {
                    prop_assert_eq!(sys.pop_front(), model.pop_front().map(FrameId::new));
                }
                ListOp::PopBack => {
                    prop_assert_eq!(sys.pop_back(), model.pop_back().map(FrameId::new));
                }
                ListOp::MoveToBack(x) => {
                    let was = model.iter().position(|v| *v == x);
                    let got = sys.move_to_back(FrameId::new(x));
                    prop_assert_eq!(got, was.is_some());
                    if let Some(i) = was {
                        model.remove(i);
                        model.push_back(x);
                    }
                }
            }
            prop_assert_eq!(sys.len(), model.len());
            let seen: Vec<u32> = sys.iter().map(|f| f.raw()).collect();
            let want: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(seen, want);
        }
    }

    #[test]
    fn lru_order_coldest_is_minimal_stamp(touches in prop::collection::vec(0u32..32, 1..200)) {
        let mut lru = LruOrder::new();
        for t in &touches {
            lru.touch(FrameId::new(*t));
        }
        let coldest = lru.coldest().expect("nonempty");
        let cs = lru.stamp_of(coldest).unwrap();
        for f in lru.hottest_n(usize::MAX) {
            prop_assert!(lru.stamp_of(f).unwrap() >= cs);
        }
        // coldest_n is sorted ascending by stamp.
        let order = lru.coldest_n(usize::MAX);
        for w in order.windows(2) {
            prop_assert!(lru.stamp_of(w[0]).unwrap() <= lru.stamp_of(w[1]).unwrap());
        }
    }

    #[test]
    fn inactive_ratio_is_monotone_in_tier_size(a in 1usize..1_000_000, b in 1usize..1_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(balance::inactive_ratio(lo) <= balance::inactive_ratio(hi));
    }

    // -----------------------------------------------------------------
    // Distributions.
    // -----------------------------------------------------------------

    #[test]
    fn zipfian_stays_in_range(items in 1u64..5_000, seed in 0u64..1000) {
        let z = Zipfian::ycsb_default(items);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.next(&mut rng) < items);
        }
    }

    #[test]
    fn scrambled_zipfian_stays_in_range(items in 1u64..5_000, seed in 0u64..1000) {
        let s = ScrambledZipfian::new(items);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(s.next(&mut rng) < items);
        }
    }

    #[test]
    fn latest_stays_in_range_while_growing(start in 1u64..2_000, grows in prop::collection::vec(1u64..50, 0..10)) {
        let mut l = Latest::new(start);
        let mut rng = StdRng::seed_from_u64(1);
        let mut n = start;
        for g in grows {
            n += g;
            l.grow(n);
            for _ in 0..50 {
                prop_assert!(l.next(&mut rng) < n);
            }
        }
    }

    // -----------------------------------------------------------------
    // Watermarks.
    // -----------------------------------------------------------------

    #[test]
    fn watermarks_ordered_for_any_split(node in 8usize..100_000, extra in 0usize..100_000) {
        let total = node + extra;
        let w = mc_mem::Watermarks::for_node(node, total);
        prop_assert!(w.min >= 1);
        prop_assert!(w.min < w.low);
        prop_assert!(w.low < w.high);
        prop_assert!(w.high < node.max(4));
    }
}

// ---------------------------------------------------------------------
// MULTI-CLOCK structural invariants under random driving.
// ---------------------------------------------------------------------

/// The library's own checker covers lists, states, tiers and flag
/// mirrors; see `multi_clock::validate`.
fn check_multi_clock_invariants(mem: &MemorySystem, mc: &MultiClock) {
    mc.assert_invariants(mem);
}

#[derive(Debug, Clone)]
enum DriveOp {
    MapTouch(u16),
    Touch(u16),
    Write(u16),
    Unmap(u16),
    Tick,
    Pressure(u8),
    Mlock(u16),
    Munlock(u16),
}

fn drive_op() -> impl Strategy<Value = DriveOp> {
    prop_oneof![
        (0u16..600).prop_map(DriveOp::MapTouch),
        (0u16..600).prop_map(DriveOp::Touch),
        (0u16..600).prop_map(DriveOp::Write),
        (0u16..600).prop_map(DriveOp::Unmap),
        Just(DriveOp::Tick),
        (0u8..2).prop_map(DriveOp::Pressure),
        (0u16..600).prop_map(DriveOp::Mlock),
        (0u16..600).prop_map(DriveOp::Munlock),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn multi_clock_invariants_hold_under_random_ops(ops in prop::collection::vec(drive_op(), 1..120)) {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        let mut mc = MultiClock::new(MultiClockConfig::default(), mem.topology());
        let mut now = Nanos::ZERO;
        for op in ops {
            match op {
                DriveOp::MapTouch(v) => {
                    let vp = VPage::new(v as u64);
                    if mem.translate(vp).is_none() {
                        if let Ok(f) = mem.alloc_page(PageKind::Anon) {
                            mem.map(vp, f).unwrap();
                            mc.on_page_mapped(&mut mem, f);
                        }
                    }
                    if mem.translate(vp).is_some() {
                        mem.access(vp, AccessKind::Read).unwrap();
                    }
                }
                DriveOp::Touch(v) => {
                    let vp = VPage::new(v as u64);
                    if mem.translate(vp).is_some() {
                        mem.access(vp, AccessKind::Read).unwrap();
                    }
                }
                DriveOp::Write(v) => {
                    let vp = VPage::new(v as u64);
                    if mem.translate(vp).is_some() {
                        mem.access(vp, AccessKind::Write).unwrap();
                    }
                }
                DriveOp::Unmap(v) => {
                    let vp = VPage::new(v as u64);
                    if let Some(f) = mem.translate(vp) {
                        mc.on_page_unmapped(&mut mem, f);
                        mem.free_page(f).unwrap();
                    }
                }
                DriveOp::Tick => {
                    now += Nanos::from_secs(1);
                    mc.tick(&mut mem, now);
                }
                DriveOp::Pressure(t) => {
                    mc.on_pressure(&mut mem, TierId::new(t), now);
                }
                DriveOp::Mlock(v) => {
                    if let Some(f) = mem.translate(VPage::new(v as u64)) {
                        mc.mlock(&mut mem, f);
                    }
                }
                DriveOp::Munlock(v) => {
                    if let Some(f) = mem.translate(VPage::new(v as u64)) {
                        mc.munlock(&mut mem, f);
                    }
                }
            }
            check_multi_clock_invariants(&mem, &mc);
        }
    }

    /// Accounting invariant: allocations - frees == live frames; tier
    /// free counts match watermark arithmetic.
    #[test]
    fn memory_accounting_balances(ops in prop::collection::vec((0u16..400, any::<bool>()), 1..200)) {
        let mut mem = MemorySystem::new(MemConfig::two_tier(64, 256));
        for (v, write) in ops {
            let vp = VPage::new(v as u64);
            if mem.translate(vp).is_none() {
                if let Ok(f) = mem.alloc_page(PageKind::Anon) {
                    mem.map(vp, f).unwrap();
                }
            }
            if let Some(_f) = mem.translate(vp) {
                let kind = if write { AccessKind::Write } else { AccessKind::Read };
                mem.access(vp, kind).unwrap();
            }
            let live = mem.stats().allocs - mem.stats().frees;
            let used: usize = (0..mem.topology().tier_count())
                .map(|t| mem.tier_used(TierId::new(t as u8)))
                .sum();
            prop_assert_eq!(live as usize, used);
            prop_assert_eq!(mem.page_table().len(), used);
        }
    }
}
