//! Cross-crate tests: dual-socket NUMA topologies (the paper's testbed
//! shape) and the trace pipeline against the tiering engine.

use mc_mem::{MemConfig, Nanos, PageKind, TierId, PAGE_SIZE};
use mc_sim::{SimConfig, Simulation, SystemKind};
use mc_trace::{replay, Heatmap, Recorder, Trace};
use mc_workloads::ycsb::{YcsbClient, YcsbConfig, YcsbWorkload};
use mc_workloads::{Memory, SimpleMemory};

fn dual_socket_cfg(system: SystemKind) -> SimConfig {
    let mut cfg = SimConfig::new(system, 1, 1);
    cfg.mem = MemConfig::dual_socket(256, 2048);
    cfg.scan_interval = Nanos::from_millis(5);
    cfg.scan_batch = 4096;
    cfg
}

#[test]
fn multi_clock_spans_numa_nodes_within_a_tier() {
    // Two DRAM nodes + two PM nodes: the DRAM tier is the union of both
    // DRAM nodes ("we define all the DRAM nodes as the DRAM tier").
    let mut sim = Simulation::new(dual_socket_cfg(SystemKind::MultiClock));
    assert_eq!(sim.mem().topology().tier_count(), 2);
    assert_eq!(sim.mem().topology().tier(TierId::TOP).nodes().len(), 2);

    // Fill past both DRAM nodes; keep one PM page hot; it must promote
    // into *some* DRAM node.
    let region = sim.mmap(PAGE_SIZE * 4096, PageKind::Anon);
    let mut i = 0u64;
    loop {
        let addr = region.add(i * PAGE_SIZE as u64);
        sim.read(addr, 8);
        let f = sim.mem().translate(addr.page()).unwrap();
        if sim.mem().frame(f).tier() != TierId::TOP {
            break;
        }
        i += 1;
        assert!(i < 600);
    }
    let hot = region.add(i * PAGE_SIZE as u64);
    for _ in 0..60 {
        sim.read(hot, 8);
        sim.compute(Nanos::from_millis(5));
    }
    let f = sim.mem().translate(hot.page()).unwrap();
    assert_eq!(sim.mem().frame(f).tier(), TierId::TOP);
    // Both DRAM nodes hold pages (allocation balanced across the socket).
    let topo = sim.mem().topology();
    for node in topo.tier(TierId::TOP).nodes() {
        let free = sim.mem().node_free(*node);
        let total = topo.node(*node).pages();
        assert!(free < total, "node {node} must hold pages");
    }
}

#[test]
fn dual_socket_comparison_keeps_paper_ordering() {
    let run = |system| {
        let mut sim = Simulation::new(dual_socket_cfg(system));
        let mut client = YcsbClient::load(
            YcsbConfig {
                records: 4_000,
                value_size: 1024,
                op_compute: Nanos::from_nanos(500),
                ..Default::default()
            },
            &mut sim,
        );
        let end = sim.now() + Nanos::from_millis(1_600);
        let t0 = sim.now();
        let mut ops = 0u64;
        while sim.now() < end {
            client.run_op(YcsbWorkload::A, &mut sim);
            ops += 1;
        }
        ops as f64 / (sim.now() - t0).as_secs_f64()
    };
    let stat = run(SystemKind::Static);
    let mc = run(SystemKind::MultiClock);
    assert!(
        mc > stat,
        "MULTI-CLOCK must beat static on the dual-socket machine: {mc:.0} vs {stat:.0}"
    );
}

#[test]
fn recorded_kv_trace_replays_faithfully_into_the_engine() {
    // Record on a flat memory, replay into the tiering engine; the
    // replayed access count matches and the engine tiers pages normally.
    let mut rec = Recorder::new(SimpleMemory::new());
    let mut kv = mc_workloads::kv::KvStore::new(&mut rec, 500);
    for k in 0..500u64 {
        kv.set(&mut rec, k, &[k as u8; 512]);
    }
    for _ in 0..5 {
        for k in 0..50u64 {
            kv.get(&mut rec, k);
        }
    }
    let trace = rec.finish();
    assert!(trace.len() > 1_000);

    let mut cfg = SimConfig::new(SystemKind::MultiClock, 128, 1024);
    cfg.scan_interval = Nanos::from_millis(2);
    cfg.scan_batch = 4096;
    let mut sim = Simulation::new(cfg);
    let stats = replay(&trace, &mut sim);
    assert_eq!(stats.events_replayed as usize, trace.len());
    assert!(sim.mem().stats().reads > 0 && sim.mem().stats().writes > 0);
}

#[test]
fn trace_binary_roundtrip_through_a_real_workload() {
    let mut rec = Recorder::with_sampling(SimpleMemory::new(), 0.2, 50, 42);
    let mut client = YcsbClient::load(
        YcsbConfig {
            records: 500,
            value_size: 256,
            ..Default::default()
        },
        &mut rec,
    );
    client.run(YcsbWorkload::B, &mut rec, 20_000);
    let sampled = rec.sampled_pages().len();
    assert!(sampled > 0 && sampled <= 50);
    let trace = rec.finish();
    let mut buf = Vec::new();
    trace.write_to(&mut buf).unwrap();
    let back = Trace::read_from(&mut buf.as_slice()).unwrap();
    assert_eq!(back, trace);

    // The heat map of a sampled YCSB trace shows skew: some sampled page
    // is much hotter than the median.
    let h = Heatmap::build(&back, Nanos::from_millis(5));
    let mut totals = h.totals();
    totals.sort_unstable();
    let hottest = *totals.last().unwrap();
    let median = totals[totals.len() / 2];
    assert!(
        hottest >= 4 * median.max(1),
        "zipfian skew visible in the sample: hottest={hottest} median={median}"
    );
}
